//! Pages with variable size classes.

use crate::checksum::xxh64;
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};

/// Magic bytes identifying a segidx page ("SGIX").
const PAGE_MAGIC: u32 = 0x5347_4958;

/// Base page size in bytes; the paper's leaf node size (§5).
pub const BASE_PAGE_SIZE: usize = 1024;

/// Maximum supported size class (`1 KB << 10` = 1 MB pages).
pub const MAX_SIZE_CLASS: u8 = 10;

/// Length of the fixed on-disk page header:
/// magic (4) + size class (1) + flags (1) + reserved (2) + payload len (4) +
/// checksum (8).
pub const PAGE_HEADER_LEN: usize = 20;

/// Identifier of a page within a page file.
///
/// Page ids are dense, stable, and never reused until the page is explicitly
/// freed; they map 1:1 onto index node ids when an index is persisted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A power-of-two page size: `1 KB << class`.
///
/// Segment indexes double the node size at each successively higher level
/// (paper §2.1.2), so an index of height `h` uses size classes `0..h`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SizeClass(u8);

impl SizeClass {
    /// Creates a size class.
    ///
    /// # Panics
    /// Panics if `class > MAX_SIZE_CLASS`.
    #[inline]
    pub fn new(class: u8) -> Self {
        assert!(
            class <= MAX_SIZE_CLASS,
            "size class {class} exceeds maximum {MAX_SIZE_CLASS}"
        );
        Self(class)
    }

    /// Creates a size class, returning `None` if out of range.
    #[inline]
    pub fn checked(class: u8) -> Option<Self> {
        (class <= MAX_SIZE_CLASS).then_some(Self(class))
    }

    /// The smallest size class whose payload capacity holds `payload` bytes,
    /// or `None` if even the largest class is too small.
    pub fn fitting(payload: usize) -> Option<Self> {
        (0..=MAX_SIZE_CLASS)
            .map(Self)
            .find(|c| c.payload_capacity() >= payload)
    }

    /// The raw class value.
    #[inline]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Total page size in bytes (`1 KB << class`).
    #[inline]
    pub fn page_size(self) -> usize {
        BASE_PAGE_SIZE << self.0
    }

    /// Payload capacity in bytes (page size minus header).
    #[inline]
    pub fn payload_capacity(self) -> usize {
        self.page_size() - PAGE_HEADER_LEN
    }

    /// Number of base-size slots this class occupies in the page file.
    #[inline]
    pub fn slots(self) -> u64 {
        1u64 << self.0
    }
}

/// An in-memory page: id, size class, and mutable payload.
#[derive(Clone, Debug)]
pub struct Page {
    id: PageId,
    size_class: SizeClass,
    payload: BytesMut,
}

impl Page {
    /// Creates an empty page of the given size class.
    pub fn new(id: PageId, size_class: SizeClass) -> Self {
        Self {
            id,
            size_class,
            payload: BytesMut::new(),
        }
    }

    /// The page id.
    #[inline]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The page's size class.
    #[inline]
    pub fn size_class(&self) -> SizeClass {
        self.size_class
    }

    /// The current payload bytes.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Replaces the payload, enforcing the size-class capacity.
    pub fn set_payload(&mut self, bytes: &[u8]) -> Result<()> {
        let capacity = self.size_class.payload_capacity();
        if bytes.len() > capacity {
            return Err(StorageError::PayloadTooLarge {
                requested: bytes.len(),
                capacity,
                size_class: self.size_class,
            });
        }
        self.payload.clear();
        self.payload.extend_from_slice(bytes);
        Ok(())
    }

    /// Serializes the page (header + payload + zero padding) into exactly
    /// `size_class.page_size()` bytes.
    pub fn to_disk_bytes(&self) -> BytesMut {
        let size = self.size_class.page_size();
        let mut buf = BytesMut::with_capacity(size);
        buf.put_u32_le(PAGE_MAGIC);
        buf.put_u8(self.size_class.raw());
        buf.put_u8(0); // flags
        buf.put_u16_le(0); // reserved
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u64_le(page_checksum(&buf[..CHECKSUM_OFFSET], &self.payload));
        buf.extend_from_slice(&self.payload);
        buf.resize(size, 0);
        buf
    }

    /// Parses a page from on-disk bytes, validating magic, size class,
    /// length, and checksum.
    pub fn from_disk_bytes(id: PageId, expected_class: SizeClass, raw: &[u8]) -> Result<Self> {
        let corrupt = |reason: String| StorageError::Corrupt { page: id, reason };
        if raw.len() != expected_class.page_size() {
            return Err(corrupt(format!(
                "expected {} bytes, got {}",
                expected_class.page_size(),
                raw.len()
            )));
        }
        let mut cur = raw;
        let magic = cur.get_u32_le();
        if magic != PAGE_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#x}")));
        }
        let class = cur.get_u8();
        if class != expected_class.raw() {
            return Err(corrupt(format!(
                "size class mismatch: header {class}, directory {}",
                expected_class.raw()
            )));
        }
        let _flags = cur.get_u8();
        let _reserved = cur.get_u16_le();
        let len = cur.get_u32_le() as usize;
        if len > expected_class.payload_capacity() {
            return Err(corrupt(format!("payload length {len} exceeds capacity")));
        }
        let stored_checksum = cur.get_u64_le();
        let payload = &cur[..len];
        let actual = page_checksum(&raw[..CHECKSUM_OFFSET], payload);
        if actual != stored_checksum {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored_checksum:#x}, computed {actual:#x}"
            )));
        }
        let mut page = Page::new(id, expected_class);
        page.payload.extend_from_slice(payload);
        Ok(page)
    }
}

/// Byte offset of the checksum field within the page header; everything
/// before it (magic, size class, flags, reserved, payload length) is covered
/// by the checksum.
const CHECKSUM_OFFSET: usize = 12;

/// XXH64 checksum over the header prefix *and* the payload, chained by
/// seeding the header digest with the payload digest. Covering the header
/// means a single corrupted byte anywhere in the integrity-relevant region
/// (magic through payload) fails validation as [`StorageError::Corrupt`] —
/// it can never be misread as a shorter/longer payload or a different size
/// class. Only the zero padding beyond the payload is uncovered, and a flip
/// there cannot change what a read returns.
pub(crate) fn page_checksum(header_prefix: &[u8], payload: &[u8]) -> u64 {
    xxh64(header_prefix, xxh64(payload, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_ladder_doubles() {
        assert_eq!(SizeClass::new(0).page_size(), 1024);
        assert_eq!(SizeClass::new(1).page_size(), 2048);
        assert_eq!(SizeClass::new(5).page_size(), 32 * 1024);
        assert_eq!(SizeClass::new(3).slots(), 8);
    }

    #[test]
    #[should_panic]
    fn size_class_out_of_range_panics() {
        let _ = SizeClass::new(MAX_SIZE_CLASS + 1);
    }

    #[test]
    fn fitting_selects_smallest() {
        assert_eq!(SizeClass::fitting(100), Some(SizeClass::new(0)));
        assert_eq!(SizeClass::fitting(1024), Some(SizeClass::new(1)));
        assert_eq!(
            SizeClass::fitting(SizeClass::new(4).payload_capacity()),
            Some(SizeClass::new(4))
        );
        assert_eq!(SizeClass::fitting(2 * 1024 * 1024), None);
    }

    #[test]
    fn roundtrip_page() {
        let mut p = Page::new(PageId(42), SizeClass::new(1));
        p.set_payload(b"hello segment indexes").unwrap();
        let bytes = p.to_disk_bytes();
        assert_eq!(bytes.len(), 2048);
        let back = Page::from_disk_bytes(PageId(42), SizeClass::new(1), &bytes).unwrap();
        assert_eq!(back.payload(), b"hello segment indexes");
        assert_eq!(back.size_class(), SizeClass::new(1));
    }

    #[test]
    fn payload_too_large_rejected() {
        let mut p = Page::new(PageId(0), SizeClass::new(0));
        let big = vec![0u8; 1024];
        assert!(matches!(
            p.set_payload(&big),
            Err(StorageError::PayloadTooLarge { .. })
        ));
        // Exactly at capacity succeeds.
        let ok = vec![0u8; SizeClass::new(0).payload_capacity()];
        p.set_payload(&ok).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let mut p = Page::new(PageId(9), SizeClass::new(0));
        p.set_payload(b"data").unwrap();
        let mut bytes = p.to_disk_bytes();

        // Flip a payload bit: checksum must fail.
        bytes[PAGE_HEADER_LEN] ^= 0xff;
        let err = Page::from_disk_bytes(PageId(9), SizeClass::new(0), &bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"));

        // Bad magic.
        let mut bytes = p.to_disk_bytes();
        bytes[0] = 0;
        let err = Page::from_disk_bytes(PageId(9), SizeClass::new(0), &bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));

        // Wrong length.
        let err = Page::from_disk_bytes(PageId(9), SizeClass::new(0), &bytes[..100]).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let header = b"SGIX\x00\x00\x00\x00\x04\x00\x00\x00";
        assert_eq!(
            page_checksum(header, b"data"),
            page_checksum(header, b"data")
        );
        assert_ne!(page_checksum(header, b"a"), page_checksum(header, b"b"));
        let other = b"SGIX\x01\x00\x00\x00\x04\x00\x00\x00";
        assert_ne!(
            page_checksum(header, b"data"),
            page_checksum(other, b"data"),
            "header bytes are covered"
        );
    }

    #[test]
    fn header_corruption_detected() {
        let mut p = Page::new(PageId(5), SizeClass::new(0));
        p.set_payload(b"some payload bytes").unwrap();
        let clean = p.to_disk_bytes();
        // Every byte of the integrity-relevant region (header + payload):
        // flipping it must produce a typed error, never a wrong-answer read.
        for idx in 0..PAGE_HEADER_LEN + p.payload().len() {
            let mut bytes = clean.clone();
            bytes[idx] ^= 0x10;
            assert!(
                Page::from_disk_bytes(PageId(5), SizeClass::new(0), &bytes).is_err(),
                "corruption at byte {idx} went undetected"
            );
        }
    }
}
