//! Bounds-checked little-endian byte codecs.
//!
//! `segidx-core` serializes index nodes into page payloads with these
//! helpers. They are deliberately minimal: explicit, versionable encodings
//! beat derive-based formats for on-disk data.

use crate::error::{Result, StorageError};

/// An append-only little-endian encoder.
#[derive(Default, Debug, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed byte string (`u32` length).
    pub fn put_len_prefixed(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Decode(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed all input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65_500);
        w.put_u32(4_000_000_000);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-12.5);
        w.put_len_prefixed(b"abc");

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_500);
        assert_eq!(r.get_u32().unwrap(), 4_000_000_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -12.5);
        assert_eq!(r.get_len_prefixed().unwrap(), b"abc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64().is_err());
        // Position unchanged after failed read.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn len_prefix_overrun_errors() {
        let mut w = ByteWriter::new();
        w.put_u32(100); // claims 100 bytes follow
        w.put_bytes(b"short");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_len_prefixed().is_err());
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_f64(f64::INFINITY);
        w.put_f64(f64::NEG_INFINITY);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.get_f64().unwrap().is_nan());
    }
}
