//! An LRU buffer pool with pin counting and write-back.

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, SizeClass};
use crate::stats::{IoLatency, IoStats};
use parking_lot::Mutex;
use segidx_obs::{Event, EventKind, ObsSink};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for [`BufferPool`].
#[derive(Debug, Clone)]
pub struct BufferPoolConfig {
    /// Maximum total bytes of cached pages. Because page sizes vary by index
    /// level (paper §2.1.2), the budget is in bytes rather than frames: one
    /// 8 KB root page displaces eight 1 KB leaves.
    pub capacity_bytes: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 4 * 1024 * 1024,
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    pins: usize,
    last_used: u64,
}

#[derive(Debug)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    cached_bytes: usize,
    clock: u64,
}

/// A byte-budgeted LRU buffer pool over a [`DiskManager`].
///
/// Access is closure-based: [`BufferPool::with_page`] /
/// [`BufferPool::with_page_mut`] pin the page for the duration of the
/// closure, so eviction can never observe an in-use frame.
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<DiskManager>,
    config: BufferPoolConfig,
    inner: Mutex<PoolInner>,
    stats: Arc<IoStats>,
    sink: Mutex<Option<Arc<dyn ObsSink>>>,
}

impl BufferPool {
    /// Creates a pool over `disk` with the default byte budget.
    pub fn new(disk: Arc<DiskManager>) -> Self {
        Self::with_config(disk, BufferPoolConfig::default())
    }

    /// Creates a pool with an explicit configuration.
    pub fn with_config(disk: Arc<DiskManager>, config: BufferPoolConfig) -> Self {
        let stats = disk.stats();
        Self {
            disk,
            config,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                cached_bytes: 0,
                clock: 0,
            }),
            stats,
            sink: Mutex::new(None),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Shared I/O statistics (same counters as the disk manager's).
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Shared page read/write latency histograms (same as the disk
    /// manager's).
    pub fn latency(&self) -> Arc<IoLatency> {
        self.disk.latency()
    }

    /// Installs (or clears) an observability sink; each eviction then fires
    /// an [`EventKind::BufferEviction`] event carrying the page id, size
    /// class, and evicted byte count.
    pub fn set_sink(&self, sink: Option<Arc<dyn ObsSink>>) {
        *self.sink.lock() = sink;
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().cached_bytes
    }

    /// Number of cached pages.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Allocates a fresh page of `size_class`, caches it (dirty), and
    /// returns its id.
    pub fn allocate(&self, size_class: SizeClass) -> Result<PageId> {
        let id = self.disk.allocate(size_class)?;
        let mut inner = self.inner.lock();
        let page = Page::new(id, size_class);
        inner.cached_bytes += size_class.page_size();
        let clock = bump(&mut inner.clock);
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: true,
                pins: 0,
                last_used: clock,
            },
        );
        drop(inner);
        self.make_room()?;
        Ok(id)
    }

    /// Frees a page, dropping any cached copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.remove(&id) {
            if frame.pins > 0 {
                // Re-insert and refuse: the caller is freeing a page that is
                // concurrently in use.
                inner.frames.insert(id, frame);
                return Err(StorageError::PoolExhausted);
            }
            inner.cached_bytes -= frame.page.size_class().page_size();
        }
        drop(inner);
        self.disk.free(id)
    }

    /// Runs `f` with shared access to the page, faulting it in if needed.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        self.pin(id)?;
        let result = {
            let inner = self.inner.lock();
            let frame = inner.frames.get(&id).expect("pinned frame present");
            f(&frame.page)
        };
        self.unpin(id, false);
        self.make_room()?;
        Ok(result)
    }

    /// Runs `f` with exclusive access to the page, marking it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.pin(id)?;
        let result = {
            let mut inner = self.inner.lock();
            let frame = inner.frames.get_mut(&id).expect("pinned frame present");
            f(&mut frame.page)
        };
        self.unpin(id, true);
        self.make_room()?;
        Ok(result)
    }

    /// Writes all dirty pages back to disk and syncs metadata.
    pub fn flush_all(&self) -> Result<()> {
        let dirty: Vec<PageId> = {
            let inner = self.inner.lock();
            inner
                .frames
                .iter()
                .filter(|(_, fr)| fr.dirty)
                .map(|(&id, _)| id)
                .collect()
        };
        for id in dirty {
            // Copy the page out under the lock, write it outside any frame
            // borrow, then clear the dirty bit.
            let page = {
                let inner = self.inner.lock();
                match inner.frames.get(&id) {
                    Some(fr) if fr.dirty => fr.page.clone(),
                    _ => continue,
                }
            };
            if let Err(e) = self.disk.write_page(&page) {
                self.report_write_error(id, &e);
                return Err(e);
            }
            let mut inner = self.inner.lock();
            if let Some(fr) = inner.frames.get_mut(&id) {
                fr.dirty = false;
            }
        }
        self.disk.sync()
    }

    /// Records a failed write-back in the shared counters, fires an
    /// [`EventKind::WriteBackError`] event, and logs to stderr — the error
    /// is *reported* through every channel even when (as in `Drop`) it
    /// cannot be returned.
    fn report_write_error(&self, id: PageId, e: &StorageError) {
        self.stats.record_write_error();
        let sink = self.sink.lock().clone();
        if let Some(sink) = sink {
            sink.event(Event::new(EventKind::WriteBackError).node(id.raw()));
        }
        eprintln!("segidx-storage: write-back of page {id:?} failed: {e}");
    }

    fn pin(&self, id: PageId) -> Result<()> {
        {
            let mut inner = self.inner.lock();
            if let Some(frame) = inner.frames.get_mut(&id) {
                frame.pins += 1;
                let clock = bump(&mut inner.clock);
                inner.frames.get_mut(&id).unwrap().last_used = clock;
                self.stats.record_hit();
                segidx_obs::trace::add(segidx_obs::trace::Dim::BufferPoolHits, 1);
                return Ok(());
            }
        }
        // Miss: fault in from disk (outside the lock), then insert.
        self.stats.record_miss();
        segidx_obs::trace::add(segidx_obs::trace::Dim::BufferPoolMisses, 1);
        let page = self.disk.read_page(id)?;
        let mut inner = self.inner.lock();
        let entry = inner.frames.entry(id);
        use std::collections::hash_map::Entry;
        match entry {
            Entry::Occupied(mut e) => {
                // Raced with another fault-in; keep the existing frame.
                e.get_mut().pins += 1;
            }
            Entry::Vacant(e) => {
                e.insert(Frame {
                    dirty: false,
                    pins: 1,
                    last_used: 0,
                    page,
                });
                let id_size = inner.frames[&id].page.size_class().page_size();
                inner.cached_bytes += id_size;
            }
        }
        let clock = bump(&mut inner.clock);
        inner.frames.get_mut(&id).unwrap().last_used = clock;
        Ok(())
    }

    fn unpin(&self, id: PageId, dirty: bool) {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&id) {
            debug_assert!(frame.pins > 0);
            frame.pins -= 1;
            frame.dirty |= dirty;
        }
    }

    /// Evicts least-recently-used unpinned frames until within budget.
    fn make_room(&self) -> Result<()> {
        loop {
            let victim = {
                let inner = self.inner.lock();
                if inner.cached_bytes <= self.config.capacity_bytes {
                    return Ok(());
                }
                let candidate = inner
                    .frames
                    .iter()
                    .filter(|(_, fr)| fr.pins == 0)
                    .min_by_key(|(_, fr)| fr.last_used)
                    .map(|(&id, fr)| (id, fr.dirty));
                match candidate {
                    Some(v) => v,
                    // Everything pinned while over budget: tolerate the
                    // overshoot rather than failing closure-based accessors;
                    // the budget is restored at the next unpinned access.
                    None => return Ok(()),
                }
            };
            let (id, dirty) = victim;
            if dirty {
                let page = {
                    let inner = self.inner.lock();
                    match inner.frames.get(&id) {
                        Some(fr) if fr.pins == 0 => fr.page.clone(),
                        _ => continue,
                    }
                };
                self.disk.write_page(&page)?;
            }
            let evicted = {
                let mut inner = self.inner.lock();
                match inner.frames.get(&id) {
                    Some(fr) if fr.pins == 0 => {
                        let class = fr.page.size_class();
                        let size = class.page_size();
                        inner.frames.remove(&id);
                        inner.cached_bytes -= size;
                        self.stats.record_eviction();
                        Some((class, size))
                    }
                    _ => None,
                }
            };
            if let Some((class, size)) = evicted {
                let sink = self.sink.lock().clone();
                if let Some(sink) = sink {
                    sink.event(
                        Event::new(EventKind::BufferEviction)
                            .node(id.raw())
                            .level(class.raw() as u32)
                            .detail(size as u64),
                    );
                }
            }
        }
    }
}

/// Dropping the pool writes dirty pages back and syncs, so an index that
/// goes out of scope without an explicit [`BufferPool::flush_all`] is not
/// silently lost. Failures cannot be returned from `Drop`; they are
/// *reported* instead — counted in [`IoStats`] `write_errors`, fired as
/// [`EventKind::WriteBackError`] events, and logged to stderr. Callers that
/// need failures as errors must call [`BufferPool::flush_all`] themselves.
impl Drop for BufferPool {
    fn drop(&mut self) {
        let dirty: Vec<(PageId, Page)> = {
            let inner = self.inner.lock();
            inner
                .frames
                .iter()
                .filter(|(_, fr)| fr.dirty)
                .map(|(&id, fr)| (id, fr.page.clone()))
                .collect()
        };
        let mut failed = false;
        for (id, page) in dirty {
            if let Err(e) = self.disk.write_page(&page) {
                self.report_write_error(id, &e);
                failed = true;
            }
        }
        if let Err(e) = self.disk.sync() {
            if !failed {
                // Count the sync failure once if no write already did.
                self.stats.record_write_error();
            }
            eprintln!("segidx-storage: sync on buffer-pool drop failed: {e}");
        }
    }
}

fn bump(clock: &mut u64) -> u64 {
    *clock += 1;
    *clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn pool(name: &str, capacity_bytes: usize) -> BufferPool {
        let dir = std::env::temp_dir().join(format!(
            "segidx-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join(name);
        let disk = Arc::new(DiskManager::create(&path).unwrap());
        BufferPool::with_config(disk, BufferPoolConfig { capacity_bytes })
    }

    #[test]
    fn read_your_writes_through_cache() {
        let pool = pool("ryw.db", 1 << 20);
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"cached").unwrap())
            .unwrap();
        let payload = pool.with_page(id, |p| p.payload().to_vec()).unwrap();
        assert_eq!(payload, b"cached");
        // Never written to disk yet.
        assert_eq!(pool.stats().snapshot().writes, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        // Budget of 2 KB holds two 1 KB pages; the third allocation evicts.
        let pool = pool("evict.db", 2 * 1024);
        let ids: Vec<_> = (0..3)
            .map(|i| {
                let id = pool.allocate(SizeClass::new(0)).unwrap();
                pool.with_page_mut(id, |p| p.set_payload(&[i as u8; 64]).unwrap())
                    .unwrap();
                id
            })
            .collect();
        assert!(pool.cached_bytes() <= 2 * 1024);
        let snap = pool.stats().snapshot();
        assert!(snap.evictions >= 1);
        assert!(snap.writes >= 1, "dirty eviction wrote back");
        // Evicted page reads back correctly (from disk).
        for (i, id) in ids.iter().enumerate() {
            let payload = pool.with_page(*id, |p| p.payload().to_vec()).unwrap();
            assert_eq!(payload, vec![i as u8; 64]);
        }
    }

    #[test]
    fn flush_all_persists() {
        let dir = std::env::temp_dir().join(format!("segidx-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush.db");
        let id;
        {
            let disk = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(disk);
            id = pool.allocate(SizeClass::new(2)).unwrap();
            pool.with_page_mut(id, |p| p.set_payload(b"durable").unwrap())
                .unwrap();
            pool.flush_all().unwrap();
        }
        let disk = DiskManager::open(&path).unwrap();
        assert_eq!(disk.read_page(id).unwrap().payload(), b"durable");
    }

    #[test]
    fn lru_order_respected() {
        let pool = pool("lru.db", 2 * 1024);
        let a = pool.allocate(SizeClass::new(0)).unwrap();
        let b = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(a, |p| p.set_payload(b"a").unwrap())
            .unwrap();
        pool.with_page_mut(b, |p| p.set_payload(b"b").unwrap())
            .unwrap();
        // Touch `a` so `b` is the LRU victim.
        pool.with_page(a, |_| ()).unwrap();
        let c = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(c, |p| p.set_payload(b"c").unwrap())
            .unwrap();
        let inner = pool.inner.lock();
        assert!(inner.frames.contains_key(&a), "recently used page kept");
        assert!(!inner.frames.contains_key(&b), "LRU page evicted");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = pool("hits.db", 1 << 20);
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"x").unwrap())
            .unwrap();
        pool.with_page(id, |_| ()).unwrap();
        pool.with_page(id, |_| ()).unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.pool_misses, 0, "page was cached from allocation");
        assert_eq!(snap.pool_hits, 3);
    }

    #[test]
    fn free_drops_cached_copy() {
        let pool = pool("freec.db", 1 << 20);
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"x").unwrap())
            .unwrap();
        pool.free(id).unwrap();
        assert_eq!(pool.cached_pages(), 0);
        assert!(pool.with_page(id, |_| ()).is_err());
    }

    #[test]
    fn evictions_fire_sink_events() {
        use segidx_obs::RingBufferSink;
        let pool = pool("evsink.db", 2 * 1024);
        let sink = Arc::new(RingBufferSink::new(16));
        pool.set_sink(Some(sink.clone()));
        for i in 0..3 {
            let id = pool.allocate(SizeClass::new(0)).unwrap();
            pool.with_page_mut(id, |p| p.set_payload(&[i as u8; 64]).unwrap())
                .unwrap();
        }
        let events = sink.events_of(EventKind::BufferEviction);
        assert!(
            !events.is_empty(),
            "third 1 KB page overflows a 2 KB budget"
        );
        for e in &events {
            assert_eq!(e.level, 0, "leaf size class");
            assert_eq!(e.detail, 1024, "evicted bytes");
        }
        // Clearing the sink stops event delivery.
        pool.set_sink(None);
        let before = sink.len();
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"q").unwrap())
            .unwrap();
        assert_eq!(sink.len(), before);
    }

    #[test]
    fn page_io_latency_recorded() {
        let pool = pool("iolat.db", 1 << 20);
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"timed").unwrap())
            .unwrap();
        pool.flush_all().unwrap();
        let lat = pool.latency().snapshot();
        assert!(lat.write.count >= 1, "flush recorded a write latency");
        assert!(lat.write.p50().is_some());
    }

    #[test]
    fn variable_size_budget_accounting() {
        // An 8 KB page plus a 1 KB page exceed a 8 KB budget → eviction.
        let pool = pool("varsize.db", 8 * 1024);
        let big = pool.allocate(SizeClass::new(3)).unwrap();
        pool.with_page_mut(big, |p| p.set_payload(b"big").unwrap())
            .unwrap();
        let small = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(small, |p| p.set_payload(b"small").unwrap())
            .unwrap();
        assert!(pool.cached_bytes() <= 8 * 1024);
        let payload = pool.with_page(big, |p| p.payload().to_vec()).unwrap();
        assert_eq!(payload, b"big");
    }
}
