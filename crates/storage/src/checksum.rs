//! Hand-rolled XXH64 — the page and metadata integrity checksum.
//!
//! Torn-page detection needs a checksum that is fast on kilobyte-sized
//! inputs and sensitive to any single-byte change. FNV-1a (the original
//! choice) processes one byte per multiply; XXH64 consumes 32-byte stripes
//! through four independent lanes and finishes with a full avalanche, so a
//! one-bit flip anywhere in a 1 MB page flips ~half the digest bits. The
//! implementation is self-contained because every external dependency in
//! this workspace is a vendored shim (see `shims/README.md`).
//!
//! Verified against the reference vectors of the canonical xxHash
//! implementation (see the tests below).

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"))
}

/// One-shot XXH64 of `bytes` with the given `seed`.
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut rest = bytes;

    let mut h = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME_5)
    };

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ u64::from(read_u32(rest)).wrapping_mul(PRIME_1))
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(PRIME_5))
            .rotate_left(11)
            .wrapping_mul(PRIME_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical xxHash implementation.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
        assert_eq!(xxh64(b"", 123), xxh64(b"", 123));
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise the 32-byte stripe loop plus each tail path (8-byte,
        // 4-byte, and single-byte): a one-byte change at any position must
        // change the digest.
        let base: Vec<u8> = (0u8..=96).collect();
        for len in 0..base.len() {
            let slice = &base[..len];
            let digest = xxh64(slice, 7);
            for i in 0..len {
                let mut flipped = slice.to_vec();
                flipped[i] ^= 0x01;
                assert_ne!(xxh64(&flipped, 7), digest, "len {len}, byte {i}");
            }
        }
    }
}
