//! Deterministic fault injection for the storage layer.
//!
//! Crash consistency cannot be tested by waiting for real power cuts: the
//! interesting failures — a torn page write, a meta commit that never made
//! it to disk, an `fsync` the drive silently dropped — have to be
//! *injected*, and injected reproducibly so a red CI run can be replayed
//! locally from nothing but a seed.
//!
//! A [`FaultInjector`] is consulted by [`DiskManager`](crate::DiskManager)
//! immediately before every file write and every durability barrier. It
//! decides whether the operation proceeds, is truncated mid-write (torn),
//! fails outright, or — for barriers — is silently dropped. The built-in
//! [`ScriptedFault`] covers the plans the crash-sweep harness needs: cut
//! the power at the Nth write (optionally tearing that write at byte K),
//! fail or drop the Nth sync, and once a fault fires, keep failing
//! everything after it — a dead process issues no more I/O.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which file write is about to happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// A page image written to the data file (including compaction moves).
    Page,
    /// The serialized metadata written to the temporary sidecar file.
    Meta,
}

/// Which durability barrier is about to happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// `fsync` (or flush) of the data file.
    Data,
    /// The atomic rename that commits a new metadata epoch.
    MetaCommit,
}

/// What the injector wants done with a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Perform the write normally.
    Allow,
    /// Write only the first `keep` bytes, then fail: a torn write. The
    /// prefix reaches the file; the checksum makes the tear detectable.
    Torn {
        /// Bytes of the write that reach the file before the cut.
        keep: usize,
    },
    /// Fail before writing anything.
    Fail,
}

/// What the injector wants done with a durability barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncFault {
    /// Perform the barrier normally.
    #[default]
    Allow,
    /// Skip the barrier but report success — a lying disk. For
    /// [`SyncKind::MetaCommit`] the commit is deferred (the metadata stays
    /// dirty and is retried on the next sync), so a reopen observes the
    /// previous epoch; extents freed since the last durable commit stay
    /// unrecycled either way.
    Drop,
    /// Fail the barrier.
    Fail,
}

/// Decides the fate of each storage I/O operation.
///
/// Implementations must be deterministic given their construction
/// parameters: the crash-sweep harness replays failures from a seed alone.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// Consulted before a write of `len` bytes.
    fn before_write(&self, kind: WriteKind, len: usize) -> WriteFault;

    /// Consulted before a durability barrier.
    fn before_sync(&self, kind: SyncKind) -> SyncFault;
}

/// Marker prefix of every injected [`io::Error`], so harnesses can tell a
/// simulated crash from a genuine storage bug.
pub const INJECTED_MARKER: &str = "injected fault:";

pub(crate) fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_MARKER} {what}"))
}

/// A deterministic, scriptable [`FaultInjector`].
///
/// Operations are numbered from zero in the order the disk manager issues
/// them — writes (page and meta alike) on one counter, barriers on another.
/// The script fires at most one fault; with `kill_after_trip` (the default
/// for [`ScriptedFault::power_cut`]) every later operation fails too,
/// modeling a machine that lost power rather than a single flaky request.
///
/// ```
/// use segidx_storage::{DiskManager, DiskManagerConfig, ScriptedFault, SizeClass};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join("segidx-fault-doc");
/// std::fs::create_dir_all(&dir)?;
/// // Write #0 is the meta image `create_with` commits; cut at write #2.
/// let fault = Arc::new(ScriptedFault::power_cut(2, None));
/// let config = DiskManagerConfig {
///     fault_injector: Some(fault.clone()),
///     ..DiskManagerConfig::default()
/// };
/// let dm = DiskManager::create_with(dir.join("doc.db"), config)?;
/// let a = dm.allocate(SizeClass::new(0))?;
/// let b = dm.allocate(SizeClass::new(0))?;
/// let mut page = segidx_storage::Page::new(a, SizeClass::new(0));
/// page.set_payload(b"survives")?;
/// dm.write_page(&page)?; // write #1: allowed
/// let mut page = segidx_storage::Page::new(b, SizeClass::new(0));
/// page.set_payload(b"lost")?;
/// assert!(dm.write_page(&page).is_err()); // write #2: the power cut
/// assert!(dm.sync().is_err()); // dead machines stay dead
/// # Ok::<(), segidx_storage::StorageError>(())
/// ```
#[derive(Debug, Default)]
pub struct ScriptedFault {
    /// Write index at which to inject (`None` = never).
    fail_write_at: Option<u64>,
    /// Bytes kept of the failing write (`None` = fail before writing).
    torn_keep: Option<usize>,
    /// Sync index at which to inject (`None` = never).
    fault_sync_at: Option<u64>,
    /// The barrier fault to inject at `fault_sync_at`.
    sync_fault: SyncFault,
    /// Whether every operation after the first fault also fails.
    kill_after_trip: bool,
    writes: AtomicU64,
    syncs: AtomicU64,
    tripped: AtomicBool,
}

impl ScriptedFault {
    /// An injector that observes (and counts) but never interferes. Used
    /// for the dry run that discovers a trace's write boundaries.
    pub fn observer() -> Self {
        Self::default()
    }

    /// A power cut at write number `cut_at` (0-based, counted across page
    /// and meta writes). With `torn_keep = Some(k)` the fatal write tears
    /// after `k` bytes; with `None` it fails before writing. Everything
    /// after the cut fails.
    pub fn power_cut(cut_at: u64, torn_keep: Option<usize>) -> Self {
        Self {
            fail_write_at: Some(cut_at),
            torn_keep,
            kill_after_trip: true,
            ..Self::default()
        }
    }

    /// Fail write number `nth` with an I/O error, leaving later operations
    /// unaffected (a single flaky request, not a crash).
    pub fn fail_nth_write(nth: u64) -> Self {
        Self {
            fail_write_at: Some(nth),
            ..Self::default()
        }
    }

    /// Fail barrier number `nth` (data fsync and meta rename share the
    /// counter), leaving later operations unaffected.
    pub fn fail_nth_sync(nth: u64) -> Self {
        Self {
            fault_sync_at: Some(nth),
            sync_fault: SyncFault::Fail,
            ..Self::default()
        }
    }

    /// Silently drop barrier number `nth`: the call reports success but no
    /// durability barrier happens (and a dropped meta commit leaves the old
    /// epoch in place).
    pub fn drop_nth_sync(nth: u64) -> Self {
        Self {
            fault_sync_at: Some(nth),
            sync_fault: SyncFault::Drop,
            ..Self::default()
        }
    }

    /// Number of writes observed so far (including faulted ones).
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of barriers observed so far (including faulted ones).
    pub fn syncs_seen(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Whether the scripted fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    fn dead(&self) -> bool {
        self.kill_after_trip && self.tripped()
    }
}

impl FaultInjector for ScriptedFault {
    fn before_write(&self, _kind: WriteKind, len: usize) -> WriteFault {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        if self.dead() {
            return WriteFault::Fail;
        }
        if Some(n) == self.fail_write_at {
            self.tripped.store(true, Ordering::Relaxed);
            return match self.torn_keep {
                Some(keep) => WriteFault::Torn {
                    keep: keep.min(len.saturating_sub(1)),
                },
                None => WriteFault::Fail,
            };
        }
        WriteFault::Allow
    }

    fn before_sync(&self, _kind: SyncKind) -> SyncFault {
        let n = self.syncs.fetch_add(1, Ordering::Relaxed);
        if self.dead() {
            return SyncFault::Fail;
        }
        if Some(n) == self.fault_sync_at {
            self.tripped.store(true, Ordering::Relaxed);
            return self.sync_fault;
        }
        SyncFault::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_allows_everything_and_counts() {
        let f = ScriptedFault::observer();
        for _ in 0..5 {
            assert_eq!(f.before_write(WriteKind::Page, 100), WriteFault::Allow);
        }
        assert_eq!(f.before_sync(SyncKind::Data), SyncFault::Allow);
        assert_eq!(f.writes_seen(), 5);
        assert_eq!(f.syncs_seen(), 1);
        assert!(!f.tripped());
    }

    #[test]
    fn power_cut_kills_everything_after() {
        let f = ScriptedFault::power_cut(2, Some(7));
        assert_eq!(f.before_write(WriteKind::Page, 10), WriteFault::Allow);
        assert_eq!(f.before_write(WriteKind::Meta, 10), WriteFault::Allow);
        assert_eq!(
            f.before_write(WriteKind::Page, 10),
            WriteFault::Torn { keep: 7 }
        );
        assert!(f.tripped());
        assert_eq!(f.before_write(WriteKind::Page, 10), WriteFault::Fail);
        assert_eq!(f.before_sync(SyncKind::Data), SyncFault::Fail);
        assert_eq!(f.before_sync(SyncKind::MetaCommit), SyncFault::Fail);
    }

    #[test]
    fn torn_keep_is_clamped_below_write_length() {
        let f = ScriptedFault::power_cut(0, Some(1_000_000));
        assert_eq!(
            f.before_write(WriteKind::Page, 10),
            WriteFault::Torn { keep: 9 },
            "a torn write never completes fully"
        );
    }

    #[test]
    fn single_faults_do_not_kill() {
        let f = ScriptedFault::fail_nth_write(0);
        assert_eq!(f.before_write(WriteKind::Page, 4), WriteFault::Fail);
        assert_eq!(f.before_write(WriteKind::Page, 4), WriteFault::Allow);

        let f = ScriptedFault::drop_nth_sync(1);
        assert_eq!(f.before_sync(SyncKind::Data), SyncFault::Allow);
        assert_eq!(f.before_sync(SyncKind::MetaCommit), SyncFault::Drop);
        assert_eq!(f.before_sync(SyncKind::Data), SyncFault::Allow);
    }

    #[test]
    fn injected_errors_are_marked() {
        let e = injected_error("torn write");
        assert!(e.to_string().contains(INJECTED_MARKER));
    }
}
