//! Physical I/O statistics and page-latency telemetry.

use segidx_obs::{HistogramSnapshot, LatencyHistogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for physical page traffic.
///
/// All counters are monotonically increasing and thread-safe. The index
/// layer separately counts *logical* node accesses (the paper's metric);
/// these counters report what actually hit the page file and buffer pool.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    write_errors: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Physical page reads.
    pub reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses (page fetched from disk).
    pub pool_misses: u64,
    /// Buffer-pool evictions.
    pub evictions: u64,
    /// Total bytes read from disk.
    pub bytes_read: u64,
    /// Total bytes written to disk.
    pub bytes_written: u64,
    /// Page write-backs that failed (including failures during the buffer
    /// pool's flush-on-drop, which cannot return an error to a caller).
    pub write_errors: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

impl IoStatsSnapshot {
    /// Buffer-pool hit rate in `[0, 1]`; `None` before any lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.pool_hits + self.pool_misses;
        (total > 0).then(|| self.pool_hits as f64 / total as f64)
    }

    /// The I/O performed since `earlier` was taken (saturating per-counter
    /// subtraction), so windows can be measured without resetting the
    /// cumulative counters.
    pub fn diff(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            write_errors: self.write_errors.saturating_sub(earlier.write_errors),
        }
    }
}

/// Wall-clock latency of physical page I/O, recorded by
/// [`DiskManager`](crate::DiskManager) around every page read and write.
///
/// Timing is always on: the two `Instant` reads are noise next to the
/// seek + syscall they bracket, unlike the in-memory index hot paths (which
/// gate their timing behind opt-in telemetry).
#[derive(Debug, Default)]
pub struct IoLatency {
    /// Per-page-read wall time, in nanoseconds.
    pub read: LatencyHistogram,
    /// Per-page-write wall time, in nanoseconds.
    pub write: LatencyHistogram,
}

impl IoLatency {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy of both histograms.
    pub fn snapshot(&self) -> IoLatencySnapshot {
        IoLatencySnapshot {
            read: self.read.snapshot(),
            write: self.write.snapshot(),
        }
    }
}

/// A point-in-time copy of [`IoLatency`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoLatencySnapshot {
    /// Page-read latency distribution.
    pub read: HistogramSnapshot,
    /// Page-write latency distribution.
    pub write: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(1024);
        s.record_read(2048);
        s.record_write(1024);
        s.record_alloc();
        s.record_free();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.bytes_read, 3072);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.evictions, 1);
        assert!((snap.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_none_when_untouched() {
        assert_eq!(IoStats::new().snapshot().hit_rate(), None);
    }

    #[test]
    fn diff_isolates_a_window() {
        let s = IoStats::new();
        s.record_read(1024);
        s.record_hit();
        let earlier = s.snapshot();
        s.record_read(2048);
        s.record_write(512);
        s.record_miss();
        let d = s.snapshot().diff(&earlier);
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes_read, 2048);
        assert_eq!(d.writes, 1);
        assert_eq!(d.pool_hits, 0);
        assert_eq!(d.pool_misses, 1);
        assert_eq!(d.hit_rate(), Some(0.0), "window saw only the miss");
    }

    #[test]
    fn latency_snapshot_carries_both_sides() {
        let lat = IoLatency::new();
        lat.read.record(1_000);
        lat.read.record(3_000);
        lat.write.record(20_000);
        let snap = lat.snapshot();
        assert_eq!(snap.read.count, 2);
        assert_eq!(snap.write.count, 1);
        assert!(snap.read.p50().unwrap() >= 1_000);
    }
}
