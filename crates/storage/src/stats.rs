//! Physical I/O statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for physical page traffic.
///
/// All counters are monotonically increasing and thread-safe. The index
/// layer separately counts *logical* node accesses (the paper's metric);
/// these counters report what actually hit the page file and buffer pool.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Physical page reads.
    pub reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses (page fetched from disk).
    pub pool_misses: u64,
    /// Buffer-pool evictions.
    pub evictions: u64,
    /// Total bytes read from disk.
    pub bytes_read: u64,
    /// Total bytes written to disk.
    pub bytes_written: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

impl IoStatsSnapshot {
    /// Buffer-pool hit rate in `[0, 1]`; `None` before any lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.pool_hits + self.pool_misses;
        (total > 0).then(|| self.pool_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(1024);
        s.record_read(2048);
        s.record_write(1024);
        s.record_alloc();
        s.record_free();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.bytes_read, 3072);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.evictions, 1);
        assert!((snap.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_none_when_untouched() {
        assert_eq!(IoStats::new().snapshot().hit_rate(), None);
    }
}
