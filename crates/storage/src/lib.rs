//! Paged storage substrate for segment indexes.
//!
//! The Segment Index paper (Kolovson & Stonebraker, SIGMOD 1991) targets
//! *disk-oriented* indexing structures — paged, multi-way trees of which only
//! a small portion is memory-resident at a time — and one of its three core
//! tactics is **variable node sizes**: 1 KB leaf pages, doubling at each
//! successively higher level of the index (§2.1.2, §5).
//!
//! This crate provides that substrate:
//!
//! * [`SizeClass`] — the power-of-two page-size ladder (`1 KB << class`).
//! * [`Page`] — a checksummed page with a fixed header and a payload.
//! * [`DiskManager`] — a slotted page file supporting allocation, free lists,
//!   reads, writes, and crash-consistent metadata via atomic rename.
//! * [`BufferPool`] — an LRU buffer pool with pin counting, dirty tracking,
//!   and write-back, sized in bytes (so one 8 KB root page costs the same as
//!   eight 1 KB leaves, exactly the trade the paper's variable node sizes
//!   make).
//! * [`ByteReader`] / [`ByteWriter`] — bounds-checked little-endian codecs
//!   used by `segidx-core` to serialize index nodes into pages.
//! * [`IoStats`] — physical I/O counters (reads, writes, hits, misses,
//!   evictions).
//!
//! The index crates count *logical node accesses* themselves (the paper's
//! performance metric); this crate reports the *physical* page traffic of a
//! persisted index.
//!
//! ```
//! use segidx_storage::{BufferPool, DiskManager, SizeClass};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join("segidx-doc-example");
//! std::fs::create_dir_all(&dir)?;
//! let disk = Arc::new(DiskManager::create(dir.join("doc.db"))?);
//! let pool = BufferPool::new(Arc::clone(&disk));
//!
//! // A 1 KB leaf page and a 2 KB level-1 page, per the paper's ladder.
//! let leaf = pool.allocate(SizeClass::new(0))?;
//! let upper = pool.allocate(SizeClass::new(1))?;
//! pool.with_page_mut(leaf, |p| p.set_payload(b"leaf node bytes"))??;
//! pool.with_page_mut(upper, |p| p.set_payload(b"internal node bytes"))??;
//! pool.flush_all()?;
//!
//! assert_eq!(disk.page_count(), 2);
//! assert!(disk.verify_all().is_empty());
//! # Ok::<(), segidx_storage::StorageError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod buffer;
mod checksum;
mod disk;
mod error;
mod fault;
mod page;
mod serialize;
mod stats;

pub use buffer::{BufferPool, BufferPoolConfig};
pub use checksum::xxh64;
pub use disk::{DiskManager, DiskManagerConfig, RepairReport};
pub use error::{Result, StorageError};
pub use fault::{
    FaultInjector, ScriptedFault, SyncFault, SyncKind, WriteFault, WriteKind, INJECTED_MARKER,
};
pub use page::{Page, PageId, SizeClass, BASE_PAGE_SIZE, MAX_SIZE_CLASS, PAGE_HEADER_LEN};
pub use serialize::{ByteReader, ByteWriter};
pub use stats::{IoLatency, IoLatencySnapshot, IoStats, IoStatsSnapshot};
