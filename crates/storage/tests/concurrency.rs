//! Concurrency and integrity tests for the storage substrate.

use segidx_storage::{BufferPool, BufferPoolConfig, DiskManager, SizeClass};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("segidx-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn concurrent_readers_and_writers_through_the_pool() {
    let disk = Arc::new(DiskManager::create(temp("mt.db")).unwrap());
    let pool = Arc::new(BufferPool::with_config(
        Arc::clone(&disk),
        BufferPoolConfig {
            capacity_bytes: 16 * 1024, // small: force constant eviction
        },
    ));

    // Pre-allocate 64 pages, each tagged with its index.
    let ids: Vec<_> = (0..64u8)
        .map(|i| {
            let id = pool.allocate(SizeClass::new(0)).unwrap();
            pool.with_page_mut(id, |p| p.set_payload(&[i; 100]).unwrap())
                .unwrap();
            id
        })
        .collect();
    pool.flush_all().unwrap();

    std::thread::scope(|scope| {
        // Four readers hammering random pages; two writers rewriting their
        // own disjoint slices. Readers must always observe a page whose
        // bytes are self-consistent (all equal to one tag value).
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            scope.spawn(move || {
                for round in 0..300usize {
                    let id = ids[(round * 7 + t * 13) % ids.len()];
                    let ok = pool
                        .with_page(id, |p| {
                            let bytes = p.payload();
                            !bytes.is_empty() && bytes.iter().all(|&b| b == bytes[0])
                        })
                        .unwrap();
                    assert!(ok, "torn page observed");
                }
            });
        }
        for w in 0..2 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            scope.spawn(move || {
                for round in 0..150usize {
                    let idx = w * 32 + (round % 32);
                    let tag = (200 + idx % 50) as u8;
                    pool.with_page_mut(ids[idx], |p| {
                        p.set_payload(&[tag; 100]).unwrap();
                    })
                    .unwrap();
                }
            });
        }
    });

    pool.flush_all().unwrap();
    assert!(disk.verify_all().is_empty(), "file clean after churn");
}

#[test]
fn verify_all_detects_on_disk_corruption() {
    let path = temp("fsck.db");
    let disk = DiskManager::create(&path).unwrap();
    let ids: Vec<_> = (0..8)
        .map(|i| {
            let id = disk.allocate(SizeClass::new(0)).unwrap();
            let mut page = segidx_storage::Page::new(id, SizeClass::new(0));
            page.set_payload(&[i as u8; 64]).unwrap();
            disk.write_page(&page).unwrap();
            id
        })
        .collect();
    disk.sync().unwrap();
    assert!(disk.verify_all().is_empty());
    drop(disk);

    // Corrupt the third page's payload directly on disk.
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(2 * 1024 + 30)).unwrap();
    f.write_all(&[0xFF; 8]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let disk = DiskManager::open(&path).unwrap();
    let bad = disk.verify_all();
    assert_eq!(bad.len(), 1, "exactly one corrupt page: {bad:?}");
    assert_eq!(bad[0].0, ids[2]);
    assert!(bad[0].1.contains("checksum"));
    // Healthy pages still read.
    assert_eq!(disk.read_page(ids[0]).unwrap().payload(), &[0u8; 64][..]);
}
