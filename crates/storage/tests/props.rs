//! Property-based tests for the storage substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_storage::{ByteReader, ByteWriter, Page, PageId, SizeClass};

proptest! {
    #[test]
    fn page_roundtrips_any_payload(
        class in 0u8..=4,
        payload in vec(any::<u8>(), 0..1000),
    ) {
        let class = SizeClass::new(class);
        prop_assume!(payload.len() <= class.payload_capacity());
        let mut page = Page::new(PageId(1), class);
        page.set_payload(&payload).unwrap();
        let bytes = page.to_disk_bytes();
        prop_assert_eq!(bytes.len(), class.page_size());
        let back = Page::from_disk_bytes(PageId(1), class, &bytes).unwrap();
        prop_assert_eq!(back.payload(), payload.as_slice());
    }

    #[test]
    fn single_bitflip_detected(
        payload in vec(any::<u8>(), 1..500),
        flip_bit in 0usize..8,
        seed in any::<u64>(),
    ) {
        let class = SizeClass::new(0);
        let mut page = Page::new(PageId(3), class);
        page.set_payload(&payload).unwrap();
        let mut bytes = page.to_disk_bytes();
        // Flip one bit somewhere in header-or-payload region.
        let idx = (seed as usize) % (20 + payload.len());
        bytes[idx] ^= 1 << flip_bit;
        let parsed = Page::from_disk_bytes(PageId(3), class, &bytes);
        if let Ok(p) = parsed {
            // Flips inside flags/reserved header bytes (offsets 5..8) are not
            // integrity-relevant and may parse.
            prop_assert!((5..8).contains(&idx) || p.payload() == payload.as_slice());
        }
    }

    #[test]
    fn writer_reader_mixed_sequence(ops in vec((0u8..5, any::<u64>()), 0..50)) {
        let mut w = ByteWriter::new();
        for (kind, v) in &ops {
            match kind {
                0 => w.put_u8(*v as u8),
                1 => w.put_u16(*v as u16),
                2 => w.put_u32(*v as u32),
                3 => w.put_u64(*v),
                _ => w.put_f64(f64::from_bits(*v)),
            }
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for (kind, v) in &ops {
            match kind {
                0 => prop_assert_eq!(r.get_u8().unwrap(), *v as u8),
                1 => prop_assert_eq!(r.get_u16().unwrap(), *v as u16),
                2 => prop_assert_eq!(r.get_u32().unwrap(), *v as u32),
                3 => prop_assert_eq!(r.get_u64().unwrap(), *v),
                _ => prop_assert_eq!(r.get_f64().unwrap().to_bits(), *v),
            }
        }
        prop_assert!(r.is_exhausted());
    }
}
