//! Property-based tests for the storage substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_storage::{ByteReader, ByteWriter, DiskManager, Page, PageId, SizeClass};
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "segidx-storage-props-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #[test]
    fn page_roundtrips_any_payload(
        class in 0u8..=4,
        payload in vec(any::<u8>(), 0..1000),
    ) {
        let class = SizeClass::new(class);
        prop_assume!(payload.len() <= class.payload_capacity());
        let mut page = Page::new(PageId(1), class);
        page.set_payload(&payload).unwrap();
        let bytes = page.to_disk_bytes();
        prop_assert_eq!(bytes.len(), class.page_size());
        let back = Page::from_disk_bytes(PageId(1), class, &bytes).unwrap();
        prop_assert_eq!(back.payload(), payload.as_slice());
    }

    #[test]
    fn single_bitflip_detected(
        payload in vec(any::<u8>(), 1..500),
        flip_bit in 0usize..8,
        seed in any::<u64>(),
    ) {
        let class = SizeClass::new(0);
        let mut page = Page::new(PageId(3), class);
        page.set_payload(&payload).unwrap();
        let mut bytes = page.to_disk_bytes();
        // Flip one bit somewhere in header-or-payload region.
        let idx = (seed as usize) % (20 + payload.len());
        bytes[idx] ^= 1 << flip_bit;
        // The checksum chains over the header prefix and the payload, so a
        // flip of *any* bit in the header or stored payload is detected.
        prop_assert!(Page::from_disk_bytes(PageId(3), class, &bytes).is_err());
    }

    #[test]
    fn on_disk_byte_corruption_is_typed_never_a_wrong_read(
        payload in vec(any::<u8>(), 1..900),
        corrupt_at in any::<u64>(),
        xor in 1u8..=255,
        case in any::<u64>(),
    ) {
        use std::io::{Read, Seek, SeekFrom, Write};
        let path = temp(&format!("rot-{case:016x}.db"));
        let id;
        {
            let dm = DiskManager::create(&path).unwrap();
            id = dm.allocate(SizeClass::new(0)).unwrap();
            let mut page = Page::new(id, SizeClass::new(0));
            page.set_payload(&payload).unwrap();
            dm.write_page(&page).unwrap();
            dm.sync().unwrap();
        }
        // Corrupt one byte of the page's integrity-covered region (header
        // plus stored payload; the zero tail of the extent is dead space).
        let covered = 20 + payload.len() as u64;
        let offset = corrupt_at % covered;
        {
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(offset)).unwrap();
            let mut b = [0u8];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[b[0] ^ xor]).unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        match dm.read_page(id) {
            Err(e) => prop_assert!(e.is_corruption(), "untyped error: {e}"),
            Ok(_) => prop_assert!(false, "corrupted page read back successfully"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn meta_epoch_is_monotonic_across_commits_and_reopens(
        // Each step: 0 = allocate+write+sync, 1 = sync with nothing dirty,
        // 2 = reopen.
        steps in vec(0u8..3, 1..12),
        case in any::<u64>(),
    ) {
        let path = temp(&format!("epoch-{case:016x}.db"));
        let mut dm = DiskManager::create(&path).unwrap();
        let mut last_epoch = dm.epoch();
        let mut payload_no = 0u64;
        for step in steps {
            match step {
                0 => {
                    let id = dm.allocate(SizeClass::new(0)).unwrap();
                    let mut page = Page::new(id, SizeClass::new(0));
                    page.set_payload(&payload_no.to_le_bytes()).unwrap();
                    payload_no += 1;
                    dm.write_page(&page).unwrap();
                    dm.sync().unwrap();
                    prop_assert_eq!(dm.epoch(), last_epoch + 1, "dirty sync bumps the epoch");
                }
                1 => {
                    dm.sync().unwrap();
                    prop_assert_eq!(dm.epoch(), last_epoch, "clean sync is a no-op");
                }
                _ => {
                    drop(dm);
                    dm = DiskManager::open(&path).unwrap();
                    prop_assert_eq!(dm.epoch(), last_epoch, "reopen preserves the epoch");
                }
            }
            prop_assert!(dm.epoch() >= last_epoch, "epoch never moves backwards");
            last_epoch = dm.epoch();
        }
        drop(dm);
        let _ = std::fs::remove_file(&path);
        let mut meta = temp(&format!("epoch-{case:016x}.db")).into_os_string();
        meta.push(".meta");
        let _ = std::fs::remove_file(PathBuf::from(meta));
    }

    #[test]
    fn writer_reader_mixed_sequence(ops in vec((0u8..5, any::<u64>()), 0..50)) {
        let mut w = ByteWriter::new();
        for (kind, v) in &ops {
            match kind {
                0 => w.put_u8(*v as u8),
                1 => w.put_u16(*v as u16),
                2 => w.put_u32(*v as u32),
                3 => w.put_u64(*v),
                _ => w.put_f64(f64::from_bits(*v)),
            }
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for (kind, v) in &ops {
            match kind {
                0 => prop_assert_eq!(r.get_u8().unwrap(), *v as u8),
                1 => prop_assert_eq!(r.get_u16().unwrap(), *v as u16),
                2 => prop_assert_eq!(r.get_u32().unwrap(), *v as u32),
                3 => prop_assert_eq!(r.get_u64().unwrap(), *v),
                _ => prop_assert_eq!(r.get_f64().unwrap().to_bits(), *v),
            }
        }
        prop_assert!(r.is_exhausted());
    }
}
