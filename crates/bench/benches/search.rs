//! Search-latency benches: intersection queries across the QAR sweep, and
//! the stabbing queries central to historical-data workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segidx_bench::Variant;
use segidx_core::IntervalIndex;
use segidx_geom::{Point, Rect};
use segidx_workloads::{queries_for_qar, DataDistribution};
use std::hint::black_box;

const N: usize = 20_000;

fn build(variant: Variant, dist: DataDistribution) -> Box<dyn IntervalIndex<2> + Send> {
    let dataset = dist.generate(N, 7);
    let mut index = variant.build_index(N);
    for (rect, id) in &dataset.records {
        index.insert(*rect, *id);
    }
    index
}

fn bench_qar_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_qar");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    let index = build(Variant::SkeletonSRTree, DataDistribution::I3);
    for qar in [0.0001, 0.01, 1.0, 100.0, 10_000.0] {
        let queries = queries_for_qar(qar, 20, 3).queries;
        group.bench_function(BenchmarkId::new("skeleton_sr", format!("qar_{qar}")), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += index.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn bench_stab(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_stab");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    for variant in [Variant::RTree, Variant::SRTree, Variant::SkeletonSRTree] {
        let index = build(variant, DataDistribution::I3);
        let points: Vec<Point<2>> = (0..50)
            .map(|i| Point::new([(i * 1999 % 100_000) as f64, (i * 733 % 100_000) as f64]))
            .collect();
        group.bench_function(
            BenchmarkId::new("stab", variant.name().replace(' ', "-")),
            |b| {
                b.iter(|| {
                    let mut found = 0;
                    for p in &points {
                        found += index.search(black_box(&Rect::from_point(*p))).len();
                    }
                    black_box(found)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qar_sweep, bench_stab);
criterion_main!(benches);
