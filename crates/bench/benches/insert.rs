//! Insert-throughput bench: how fast each variant ingests the paper's
//! workloads, including the Skeleton variants' prediction/pre-construction
//! phases, plus the packed (bulk-loaded) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use segidx_bench::Variant;
use segidx_workloads::DataDistribution;
use std::hint::black_box;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));

    const N: usize = 10_000;
    for dist in [DataDistribution::I3, DataDistribution::R2] {
        let dataset = dist.generate(N, 7);
        group.throughput(Throughput::Elements(N as u64));
        for variant in Variant::ALL {
            group.bench_function(
                BenchmarkId::new(dist.name(), variant.name().replace(' ', "-")),
                |b| {
                    b.iter(|| {
                        let mut index = variant.build_index(N);
                        for (rect, id) in &dataset.records {
                            index.insert(*rect, *id);
                        }
                        black_box(index.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));

    const N: usize = 10_000;
    let dataset = DataDistribution::I3.generate(N, 7);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("packed_str", |b| {
        b.iter(|| {
            let tree = segidx_core::bulk::bulk_load(
                segidx_core::IndexConfig::rtree(),
                dataset.records.clone(),
            );
            black_box(tree.node_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_bulk_load);
criterion_main!(benches);
