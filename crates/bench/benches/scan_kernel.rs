//! Leaf-scan microbench: AoS entry iteration vs the SoA plane-scan kernel.
//!
//! Isolates the per-node hot loop of the search kernel — "which entries of
//! this node intersect the query?" — and compares the pre-PR-2 layout
//! (array of `LeafEntry` structs, one `Rect::intersects` per entry) against
//! the structure-of-arrays layout scanned by
//! [`segidx_geom::scan_intersects`]. Run with `CRITERION_JSON` set to
//! capture the numbers behind `results/scan_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use segidx_core::entry::{LeafEntry, LeafStore};
use segidx_core::RecordId;
use segidx_geom::{scan_intersects, Rect};
use std::hint::black_box;

/// Synthetic leaf contents: short segments plus a sprinkling of long ones,
/// matching the paper's interval datasets.
fn dataset(n: u64) -> Vec<LeafEntry<2>> {
    (0..n)
        .map(|i| {
            let x = ((i * 37) % 5_000) as f64;
            let y = ((i * 91) % 3_000) as f64;
            let len = if i % 7 == 0 { 1_200.0 } else { 30.0 };
            LeafEntry {
                rect: Rect::new([x, y], [x + len, y + 20.0]),
                record: RecordId(i),
            }
        })
        .collect()
}

/// A query window hitting roughly a fifth of the dataset.
fn query() -> Rect<2> {
    Rect::new([500.0, 200.0], [1_700.0, 1_400.0])
}

fn bench_leaf_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_kernel");
    group
        .sample_size(40)
        .measurement_time(std::time::Duration::from_secs(2));

    for n in [64u64, 256, 1_024, 4_096] {
        let entries = dataset(n);
        let store: LeafStore<2> = entries.iter().copied().collect();
        let q = query();
        group.throughput(Throughput::Elements(n));

        // Baseline: the pre-SoA layout — iterate whole entry structs and
        // call Rect::intersects per entry.
        group.bench_function(BenchmarkId::new("aos", n), |b| {
            let mut out: Vec<u32> = Vec::with_capacity(n as usize);
            b.iter(|| {
                out.clear();
                for (i, e) in entries.iter().enumerate() {
                    if e.rect.intersects(black_box(&q)) {
                        out.push(i as u32);
                    }
                }
                black_box(out.len())
            })
        });

        // The SoA plane-scan kernel over the same logical contents.
        group.bench_function(BenchmarkId::new("soa", n), |b| {
            let mut out: Vec<u32> = Vec::with_capacity(n as usize);
            b.iter(|| {
                out.clear();
                let (los, his) = store.planes();
                scan_intersects(black_box(&q), los, his, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_scan);
criterion_main!(benches);
