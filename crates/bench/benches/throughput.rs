//! Batched query throughput: serial `search` vs the allocation-free cursor
//! kernel vs `search_batch_threads` at 1/2/4 workers, in queries per second
//! (criterion `Throughput::Elements`).
//!
//! The single-worker batched case isolates the cursor-reuse gain (no thread
//! overhead); multi-worker scaling beyond that requires real cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use segidx_core::{IndexConfig, SearchCursor, Tree};
use segidx_geom::Rect;
use segidx_workloads::{queries_for_qar, DataDistribution};
use std::hint::black_box;

const N: usize = 10_000;

fn build(config: IndexConfig) -> Tree<2> {
    let dataset = DataDistribution::I3.generate(N, 7);
    let mut tree: Tree<2> = Tree::new(config);
    for (rect, id) in &dataset.records {
        tree.insert(*rect, *id);
    }
    tree
}

fn query_mix() -> Vec<Rect<2>> {
    [0.001, 1.0, 1000.0]
        .iter()
        .flat_map(|&qar| queries_for_qar(qar, 40, 3).queries)
        .collect()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));

    let queries = query_mix();
    group.throughput(Throughput::Elements(queries.len() as u64));

    for (name, config) in [
        ("rtree", IndexConfig::rtree()),
        ("srtree", IndexConfig::srtree()),
    ] {
        let tree = build(config);

        // One fresh result vector per query (the pre-tentpole code path).
        group.bench_function(BenchmarkId::new("serial", name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search(black_box(q)).len();
                }
                black_box(found)
            })
        });

        // Allocation-free kernel: one cursor reused across the whole list.
        group.bench_function(BenchmarkId::new("cursor_reuse", name), |b| {
            let mut cursor = SearchCursor::new();
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search_with(&mut cursor, black_box(q)).len();
                }
                black_box(found)
            })
        });

        // Batch engine at fixed worker counts.
        for workers in [1usize, 2, 4] {
            group.bench_function(
                BenchmarkId::new(format!("batch_{workers}_threads"), name),
                |b| b.iter(|| black_box(tree.search_batch_threads(black_box(&queries), workers))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
