//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * A1 — split algorithm: quadratic vs linear (Guttman offers both);
//! * A2 — branch reservation fraction for Skeleton fanout sizing
//!   (paper §4 suggests 1/2, 2/3, 3/4);
//! * A3 — construction strategy: dynamic insertion vs Skeleton
//!   pre-construction vs static packing ([ROUS85]);
//! * A4 — variable node size (paper tactic §2.1.2) on vs off.
//!
//! Each ablation measures wall-clock search over a mixed query set; the
//! node-access deltas are printed once per configuration so the structural
//! effect is visible alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segidx_core::bulk::bulk_load;
use segidx_core::{
    build_skeleton, IndexConfig, SkeletonSRTree, SkeletonSpec, SplitAlgorithm, Tree,
};
use segidx_geom::Rect;
use segidx_workloads::{domain, queries_for_qar, DataDistribution};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 20_000;

fn mixed_queries() -> Vec<Rect<2>> {
    [0.0001, 1.0, 10_000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 10, 5).queries)
        .collect()
}

fn report_accesses(label: &str, tree: &Tree<2>, queries: &[Rect<2>]) {
    tree.reset_search_stats();
    for q in queries {
        let _ = tree.search(q);
    }
    let snap = tree.stats();
    eprintln!(
        "[ablation] {label}: nodes={} height={} avg_accesses={:.1}",
        tree.node_count(),
        tree.height(),
        snap.avg_nodes_per_search().unwrap_or(0.0)
    );
}

fn a1_split_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_split");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dataset = DataDistribution::I3.generate(N, 7);
    let queries = mixed_queries();

    for (name, algo) in [
        ("quadratic", SplitAlgorithm::Quadratic),
        ("linear", SplitAlgorithm::Linear),
    ] {
        let mut config = IndexConfig::rtree();
        config.split = algo;
        let mut tree: Tree<2> = Tree::new(config);
        for (r, id) in &dataset.records {
            tree.insert(*r, *id);
        }
        report_accesses(&format!("split={name}"), &tree, &queries);
        group.bench_function(BenchmarkId::new("search", name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn a2_branch_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_branch_fraction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dataset = DataDistribution::R2.generate(N, 7);
    let queries = mixed_queries();

    for (name, fraction) in [("1/2", 0.5), ("2/3", 2.0 / 3.0), ("3/4", 0.75)] {
        let mut config = SkeletonSRTree::<2>::paper_config();
        config.branch_fraction = fraction;
        let mut index = SkeletonSRTree::<2>::with_prediction_config(config, domain(), N, N / 10);
        for (r, id) in &dataset.records {
            segidx_core::IntervalIndex::insert(&mut index, *r, *id);
        }
        if let Some(tree) = index.tree() {
            report_accesses(&format!("branch_fraction={name}"), tree, &queries);
        }
        group.bench_function(BenchmarkId::new("search", name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += segidx_core::IntervalIndex::search(&index, black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn a3_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dataset = DataDistribution::I3.generate(N, 7);
    let queries = mixed_queries();

    let trees: Vec<(&str, Tree<2>)> = vec![
        ("dynamic", {
            let mut t = Tree::new(IndexConfig::rtree());
            for (r, id) in &dataset.records {
                t.insert(*r, *id);
            }
            t
        }),
        ("skeleton", {
            let spec = SkeletonSpec::uniform(domain(), N);
            let mut config = IndexConfig::rtree();
            config.coalesce = Some(Default::default());
            let mut t = build_skeleton(config, &spec);
            for (r, id) in &dataset.records {
                t.insert(*r, *id);
            }
            t
        }),
        (
            "packed",
            bulk_load(IndexConfig::rtree(), dataset.records.clone()),
        ),
    ];

    for (name, tree) in &trees {
        report_accesses(&format!("construction={name}"), tree, &queries);
        group.bench_function(BenchmarkId::new("search", *name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn a4_variable_node_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_node_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dataset = DataDistribution::I3.generate(N, 7);
    let queries = mixed_queries();

    for (name, vary) in [("doubling", true), ("fixed_1kb", false)] {
        let mut config = IndexConfig::srtree();
        config.vary_node_size = vary;
        let mut tree: Tree<2> = Tree::new(config);
        for (r, id) in &dataset.records {
            tree.insert(*r, *id);
        }
        report_accesses(&format!("node_size={name}"), &tree, &queries);
        group.bench_function(BenchmarkId::new("search", name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn a5_rstar_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rstar");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dataset = DataDistribution::R2.generate(N, 7);
    let queries = mixed_queries();

    for (name, config) in [
        ("guttman_r", IndexConfig::rtree()),
        ("rstar", IndexConfig::rstar()),
        ("sr", IndexConfig::srtree()),
    ] {
        let mut tree: Tree<2> = Tree::new(config);
        for (r, id) in &dataset.records {
            tree.insert(*r, *id);
        }
        report_accesses(&format!("baseline={name}"), &tree, &queries);
        group.bench_function(BenchmarkId::new("search", name), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in &queries {
                    found += tree.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    a1_split_algorithm,
    a2_branch_fraction,
    a3_construction,
    a4_variable_node_size,
    a5_rstar_baseline
);
criterion_main!(benches);
