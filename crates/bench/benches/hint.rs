//! HINT engine microbenches: stabbing and slab queries against the
//! SR-Tree, plus routed queries through the hybrid index. The full
//! crossover sweep with JSON output lives in the `hint_bench` binary;
//! these are the criterion-tracked spot checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segidx_core::{HintIndex, HybridIndex, IntervalIndex, SRTree};
use segidx_geom::{Point, Rect};
use segidx_workloads::{DataDistribution, DOMAIN_MAX};
use std::hint::black_box;

const N: usize = 20_000;

fn bench_stab_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("hint_stab");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    let dataset = DataDistribution::I3.generate(N, 7);
    let mut hint = HintIndex::<2>::new();
    hint.bulk_load(dataset.records.clone());
    let mut tree = SRTree::<2>::new();
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    let points: Vec<Point<2>> = (0..50u64)
        .map(|i| {
            Point::new([
                (i * 1_999 % 100_000) as f64 / 100_000.0 * DOMAIN_MAX,
                (i * 733 % 100_000) as f64 / 100_000.0 * DOMAIN_MAX,
            ])
        })
        .collect();

    group.bench_function(BenchmarkId::new("stab", "hint"), |b| {
        b.iter(|| {
            let mut found = 0;
            for p in &points {
                found += hint.stab(black_box(p)).len();
            }
            black_box(found)
        })
    });
    group.bench_function(BenchmarkId::new("stab", "sr-tree"), |b| {
        b.iter(|| {
            let mut found = 0;
            for p in &points {
                found += tree.stab(black_box(p)).len();
            }
            black_box(found)
        })
    });
    group.finish();
}

fn bench_routed_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("hint_routing");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    let dataset = DataDistribution::I3.generate(N, 7);
    let mut hybrid = HybridIndex::<2>::new();
    hybrid.bulk_load(dataset.records.clone());

    // Slabs (degenerate in y) route to HINT; windows route to the tree.
    let slabs: Vec<Rect<2>> = (0..50u64)
        .map(|i| {
            let x = (i * 1_999 % 90_000) as f64 / 100_000.0 * DOMAIN_MAX;
            let y = (i * 733 % 90_000) as f64 / 100_000.0 * DOMAIN_MAX;
            Rect::new([x, y], [x + DOMAIN_MAX * 0.02, y])
        })
        .collect();
    let windows: Vec<Rect<2>> = slabs
        .iter()
        .map(|r| Rect::new([r.lo(0), r.lo(1)], [r.hi(0), r.lo(1) + DOMAIN_MAX * 0.02]))
        .collect();

    for (label, queries) in [("slab_to_hint", &slabs), ("window_to_tree", &windows)] {
        group.bench_function(BenchmarkId::new("routed", label), |b| {
            b.iter(|| {
                let mut found = 0;
                for q in queries {
                    found += hybrid.search(black_box(q)).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stab_2d, bench_routed_queries);
criterion_main!(benches);
