//! Experiment harness reproducing the evaluation of *Segment Indexes*
//! (Kolovson & Stonebraker, SIGMOD 1991, §5).
//!
//! For each of the paper's Graphs 1–6 (plus the two exponential-centroid
//! rectangle experiments it mentions but omits), the harness:
//!
//! 1. generates the input distribution (I1–I4, R1, R2, RE1, RE2);
//! 2. builds all four index variants — R-Tree, SR-Tree, Skeleton R-Tree,
//!    Skeleton SR-Tree — with the paper's parameters (1 KB leaves doubling
//!    per level, 2/3 branch reservation, distribution prediction over the
//!    first 10,000 tuples, coalescing every 1,000 insertions among the 10
//!    least-frequently-modified nodes);
//! 3. inserts the data in random order;
//! 4. sweeps the thirteen QAR values with 100 area-10⁶ queries each,
//!    recording the average number of index nodes accessed per search;
//! 5. prints the series the paper plots and checks the qualitative shape
//!    claims.
//!
//! Run `cargo run --release -p segidx-bench --bin reproduce -- --help`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod crash;
mod experiment;
pub mod interleave;
mod metrics;
mod report;
mod runner;
mod shape;
pub mod temporal_crash;

pub use experiment::{Experiment, Graph, Variant, PAPER_PREDICTION_BUFFER};
pub use metrics::{
    concurrent_service_metrics, hybrid_router_metrics, metrics_registry, metrics_snapshot,
    sharded_service_metrics, traced_service_metrics, write_metrics_json,
};
pub use report::{render_table, write_csv};
pub use runner::{inspect_variants, run_experiment, BuildInfo, GraphResult, Series, SweepPoint};
pub use shape::{check_exponential_lower, check_paper_shape, render_checks, ShapeCheck};
