//! Crash-sweep differential harness: power-cut a build/insert/delete trace
//! at every write boundary and prove the recovered index answers exactly
//! like a model rebuilt from the durable prefix.
//!
//! The sweep exploits determinism end to end. A *dry run* executes the
//! trace with an observing [`ScriptedFault`] to learn the total number of
//! physical writes `W` and the disk epoch reached after each checkpoint.
//! Because page allocation and serialization are deterministic, a faulted
//! run is byte-for-byte a prefix of the dry run up to its cut, so the epoch
//! found on reopen identifies precisely which checkpoint survived — and
//! therefore which operation prefix the recovered tree must answer for.
//!
//! Per cut `c in 0..=W` the harness asserts:
//!
//! 1. [`DiskManager::open_repair`] succeeds (or, for cuts before the very
//!    first meta commit, fails with a *typed* error — never a panic or a
//!    silent half-state);
//! 2. the repair report is clean — a pure power cut must never surface as
//!    page corruption, because extents freed since the last durable commit
//!    are not recycled;
//! 3. [`persist::recover`] reloads the committed tree without a rebuild;
//! 4. every probe query returns exactly the records the model (the op
//!    prefix up to the surviving checkpoint, replayed on a sorted list)
//!    says intersect it.
//!
//! [`corruption_trials`] covers the non-power-cut half: flip bytes in the
//! page file, then require either a typed corruption error or a truthful
//! rebuild whose answers are a subset of the uncorrupted model's.

use segidx_core::persist;
use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::Rect;
use segidx_storage::{DiskManager, DiskManagerConfig, FaultInjector, ScriptedFault, StorageError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Deterministic 64-bit generator (SplitMix64) so the harness needs no RNG
/// dependency and every trace is replayable from its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One step of a crash-sweep trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Insert an interval for a record.
    Insert(Rect<2>, RecordId),
    /// Delete a previously inserted interval.
    Delete(Rect<2>, RecordId),
    /// Commit the in-memory tree to disk ([`persist::commit`]).
    Checkpoint,
}

/// Shape of a generated trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Total insert/delete operations.
    pub ops: usize,
    /// A checkpoint is emitted every this many operations (and once at the
    /// end).
    pub checkpoint_every: usize,
    /// Probability that an op deletes an existing record instead of
    /// inserting a new one.
    pub delete_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ops: 48,
            checkpoint_every: 12,
            delete_fraction: 0.25,
        }
    }
}

/// The deterministic trace for `seed`: interval inserts and deletes with
/// periodic checkpoints, ending on a checkpoint.
pub fn trace(seed: u64, cfg: &TraceConfig) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed ^ 0xC4A5_1D00);
    let mut ops = Vec::with_capacity(cfg.ops + cfg.ops / cfg.checkpoint_every.max(1) + 1);
    let mut alive: Vec<(Rect<2>, RecordId)> = Vec::new();
    let mut next_record = 0u64;
    for i in 0..cfg.ops {
        let delete = !alive.is_empty() && rng.next_f64() < cfg.delete_fraction;
        if delete {
            let victim = alive.swap_remove((rng.next_u64() as usize) % alive.len());
            ops.push(Op::Delete(victim.0, victim.1));
        } else {
            let x = rng.next_f64() * 5_000.0;
            let y = rng.next_f64() * 5_000.0;
            // Mostly short intervals with an occasional long spanner, the
            // paper's I-series mix, so checkpoints exercise spanning
            // records too.
            let len = if rng.next_u64() & 7 == 0 {
                1_500.0
            } else {
                40.0
            };
            let rect = Rect::new([x, y], [x + len, y + rng.next_f64() * 40.0]);
            let record = RecordId(next_record);
            next_record += 1;
            alive.push((rect, record));
            ops.push(Op::Insert(rect, record));
        }
        if (i + 1) % cfg.checkpoint_every.max(1) == 0 {
            ops.push(Op::Checkpoint);
        }
    }
    if ops.last() != Some(&Op::Checkpoint) {
        ops.push(Op::Checkpoint);
    }
    ops
}

/// Probe rectangles used for differential comparison.
pub fn probes(seed: u64, count: usize) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed ^ 0x9B0E_5EED);
    (0..count)
        .map(|_| {
            let x = rng.next_f64() * 5_000.0;
            let y = rng.next_f64() * 5_000.0;
            let w = 50.0 + rng.next_f64() * 1_000.0;
            let h = 50.0 + rng.next_f64() * 1_000.0;
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

/// The records intersecting `query` after replaying `ops_prefix` on a flat
/// list — the harness's model of truth.
pub fn model_answer(ops_prefix: &[Op], query: &Rect<2>) -> Vec<RecordId> {
    let mut alive: Vec<(Rect<2>, RecordId)> = Vec::new();
    for op in ops_prefix {
        match op {
            Op::Insert(rect, record) => alive.push((*rect, *record)),
            Op::Delete(_, record) => alive.retain(|(_, r)| r != record),
            Op::Checkpoint => {}
        }
    }
    let mut out: Vec<RecordId> = alive
        .iter()
        .filter(|(rect, _)| rect.intersects(query))
        .map(|(_, r)| *r)
        .collect();
    out.sort_unstable();
    out
}

/// How a trace run against a (possibly fault-injected) disk ended.
#[derive(Debug)]
pub struct RunOutcome {
    /// Checkpoints that completed their commit without error.
    pub checkpoints_done: usize,
    /// The first error hit, if any (the simulated crash point).
    pub error: Option<StorageError>,
}

/// Replays `ops` against a fresh disk at `path`, committing on every
/// [`Op::Checkpoint`]. Stops at the first storage error (the simulated
/// power cut).
pub fn run_trace(path: &Path, injector: Option<Arc<dyn FaultInjector>>, ops: &[Op]) -> RunOutcome {
    let config = DiskManagerConfig {
        fault_injector: injector,
        ..DiskManagerConfig::default()
    };
    let disk = match DiskManager::create_with(path, config) {
        Ok(d) => d,
        Err(e) => {
            return RunOutcome {
                checkpoints_done: 0,
                error: Some(e),
            }
        }
    };
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    let mut checkpoints_done = 0;
    for op in ops {
        match op {
            Op::Insert(rect, record) => {
                tree.insert(*rect, *record);
            }
            Op::Delete(rect, record) => {
                tree.delete(rect, *record);
            }
            Op::Checkpoint => match persist::commit(&tree, &disk) {
                Ok(_) => checkpoints_done += 1,
                Err(e) => {
                    return RunOutcome {
                        checkpoints_done,
                        error: Some(e),
                    }
                }
            },
        }
    }
    RunOutcome {
        checkpoints_done,
        error: None,
    }
}

/// One differential failure found by the sweep — a cut (or corruption
/// trial) after which recovery answered wrongly or failed untypedly.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The trace seed.
    pub seed: u64,
    /// The write index the power was cut at (or the corrupted byte offset
    /// for corruption trials).
    pub cut_at: u64,
    /// What went wrong.
    pub detail: String,
}

/// Result of sweeping one seed.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Total physical writes in the uncut run (the sweep tested cuts
    /// `0..=writes`).
    pub writes: u64,
    /// Differential failures; empty means the seed passed.
    pub failures: Vec<SweepFailure>,
}

/// Power-cuts the trace for `seed` at every write boundary and checks
/// recovery against the model. `scratch` is a directory the sweep may
/// fill with (and delete) page files.
pub fn crash_sweep(seed: u64, scratch: &Path, cfg: &TraceConfig) -> SweepOutcome {
    let ops = trace(seed, cfg);
    let probe_set = probes(seed, 16);
    std::fs::create_dir_all(scratch).expect("scratch dir");

    // Dry run: learn the write count, the epoch before any checkpoint, and
    // the epoch after each checkpoint.
    let observer = Arc::new(ScriptedFault::observer());
    let dry_path = scratch.join(format!("dry-{seed:016x}.db"));
    let outcome = run_trace(&dry_path, Some(observer.clone() as Arc<_>), &ops);
    assert!(
        outcome.error.is_none(),
        "dry run must not fail: {:?}",
        outcome.error
    );
    let writes = observer.writes_seen();
    let (base_epoch, checkpoint_epochs) = {
        let disk = DiskManager::open(&dry_path).expect("reopen dry run");
        let final_epoch = disk.epoch();
        let total_checkpoints = ops.iter().filter(|o| matches!(o, Op::Checkpoint)).count();
        // commit() syncs exactly once per checkpoint, so epochs count back
        // deterministically from the final one.
        let base = final_epoch - total_checkpoints as u64;
        let epochs: Vec<u64> = (1..=total_checkpoints as u64).map(|k| base + k).collect();
        (base, epochs)
    };
    // Op index (exclusive) covered by the k-th checkpoint (1-based).
    let checkpoint_prefix: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, Op::Checkpoint))
        .map(|(i, _)| i + 1)
        .collect();
    remove_db(&dry_path);

    let mut failures = Vec::new();
    let mut cut_rng = SplitMix64::new(seed ^ 0x00C0_FFEE);
    for cut in 0..=writes {
        // Alternate torn and clean-fail cuts, with a pseudorandom tear
        // length, so both partial-write shapes are exercised at every
        // boundary over the seed population.
        let torn = if cut_rng.next_u64() & 1 == 0 {
            Some((cut_rng.next_u64() % 4096) as usize)
        } else {
            None
        };
        let path = scratch.join(format!("cut-{seed:016x}-{cut}.db"));
        if let Err(detail) = check_one_cut(
            &path,
            &ops,
            &probe_set,
            cut,
            torn,
            base_epoch,
            &checkpoint_epochs,
            &checkpoint_prefix,
        ) {
            failures.push(SweepFailure {
                seed,
                cut_at: cut,
                detail,
            });
        }
        remove_db(&path);
    }
    SweepOutcome { writes, failures }
}

#[allow(clippy::too_many_arguments)]
fn check_one_cut(
    path: &Path,
    ops: &[Op],
    probe_set: &[Rect<2>],
    cut: u64,
    torn: Option<usize>,
    base_epoch: u64,
    checkpoint_epochs: &[u64],
    checkpoint_prefix: &[usize],
) -> Result<(), String> {
    let fault = Arc::new(ScriptedFault::power_cut(cut, torn));
    let outcome = run_trace(path, Some(fault.clone() as Arc<_>), ops);
    match &outcome.error {
        None => {
            // The cut landed past the last write; nothing to check beyond a
            // clean reopen below.
        }
        Some(e) if e.is_injected() => {}
        Some(e) => return Err(format!("non-injected error during faulted run: {e}")),
    }

    let (disk, report) = match DiskManager::open_repair(path, DiskManagerConfig::default(), None) {
        Ok(v) => v,
        Err(e) => {
            // Only acceptable when the very first meta commit never
            // became durable — there is no database yet.
            return if outcome.checkpoints_done == 0 && e.is_corruption()
                || matches!(e, StorageError::Io(_))
            {
                Ok(())
            } else {
                Err(format!("reopen failed after {cut}: {e}"))
            };
        }
    };
    if !report.is_clean() {
        return Err(format!(
            "pure power cut surfaced as corruption: {:?}",
            report.quarantined
        ));
    }

    // The durable epoch pins which checkpoint survived.
    let epoch = disk.epoch();
    let k = match checkpoint_epochs.iter().position(|&e| e == epoch) {
        Some(i) => i + 1,
        None if epoch == base_epoch => 0,
        None => return Err(format!("epoch {epoch} matches no checkpoint")),
    };
    if k < outcome.checkpoints_done {
        return Err(format!(
            "commit {} reported success but reopened at checkpoint {k}",
            outcome.checkpoints_done
        ));
    }
    if k == 0 {
        return match disk.root() {
            None => Ok(()),
            Some(r) => Err(format!("no checkpoint durable yet root = {r:?}")),
        };
    }
    let (tree, rr) = persist::recover::<2>(&disk, &report, None)
        .map_err(|e| format!("recover failed at checkpoint {k}: {e}"))?;
    if rr.rebuilt {
        return Err("power cut forced a rebuild (should reload committed tree)".into());
    }
    let prefix = &ops[..checkpoint_prefix[k - 1]];
    for probe in probe_set {
        let expected = model_answer(prefix, probe);
        let mut got = tree.search(probe);
        got.sort_unstable();
        got.dedup();
        if got != expected {
            return Err(format!(
                "probe {probe:?} after checkpoint {k}: expected {expected:?}, got {got:?}"
            ));
        }
    }
    Ok(())
}

/// Flips bytes in a committed page file and checks recovery stays truthful:
/// every trial must end in a typed corruption error or a rebuilt tree whose
/// answers are a subset of the uncorrupted model's. Returns failures.
pub fn corruption_trials(seed: u64, scratch: &Path, trials: usize) -> Vec<SweepFailure> {
    let cfg = TraceConfig::default();
    let ops = trace(seed, &cfg);
    let probe_set = probes(seed, 16);
    std::fs::create_dir_all(scratch).expect("scratch dir");
    let mut rng = SplitMix64::new(seed ^ 0xBAD5_EED5);
    let mut failures = Vec::new();
    for trial in 0..trials {
        let path = scratch.join(format!("rot-{seed:016x}-{trial}.db"));
        let outcome = run_trace(&path, None, &ops);
        assert!(outcome.error.is_none(), "clean run failed: {outcome:?}");
        let len = std::fs::metadata(&path).expect("page file").len();
        let offset = rng.next_u64() % len.max(1);
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .expect("open page file");
            f.seek(SeekFrom::Start(offset)).unwrap();
            let mut b = [0u8];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[b[0] ^ (1 << (rng.next_u64() % 8))]).unwrap();
        }
        if let Err(detail) = check_one_corruption(&path, &ops, &probe_set) {
            failures.push(SweepFailure {
                seed,
                cut_at: offset,
                detail,
            });
        }
        remove_db(&path);
    }
    failures
}

fn check_one_corruption(path: &Path, ops: &[Op], probe_set: &[Rect<2>]) -> Result<(), String> {
    let (disk, report) = match DiskManager::open_repair(path, DiskManagerConfig::default(), None) {
        Ok(v) => v,
        Err(e) if e.is_corruption() => return Ok(()), // typed, truthful
        Err(e) => return Err(format!("untyped open failure: {e}")),
    };
    let (tree, _rr) = match persist::recover::<2>(&disk, &report, None) {
        Ok(v) => v,
        Err(e) if e.is_corruption() => return Ok(()),
        Err(e) => return Err(format!("untyped recover failure: {e}")),
    };
    for probe in probe_set {
        let expected = model_answer(ops, probe);
        let mut got = tree.search(probe);
        got.sort_unstable();
        got.dedup();
        // Subset: recovery may lose quarantined entries but must never
        // fabricate a result.
        if !got.iter().all(|r| expected.contains(r)) {
            return Err(format!(
                "probe {probe:?}: fabricated results; expected ⊆ {expected:?}, got {got:?}"
            ));
        }
    }
    Ok(())
}

fn remove_db(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut meta = path.clone().into_os_string();
    meta.push(".meta");
    let _ = std::fs::remove_file(PathBuf::from(meta));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("segidx-crash-{}-{name}", std::process::id()))
    }

    #[test]
    fn trace_is_deterministic_and_ends_on_checkpoint() {
        let cfg = TraceConfig::default();
        let a = trace(7, &cfg);
        let b = trace(7, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, trace(8, &cfg));
        assert_eq!(a.last(), Some(&Op::Checkpoint));
        assert!(a.iter().any(|o| matches!(o, Op::Delete(..))));
    }

    #[test]
    fn model_replays_deletes() {
        let r = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let ops = vec![
            Op::Insert(r, RecordId(1)),
            Op::Insert(r, RecordId(2)),
            Op::Delete(r, RecordId(1)),
            Op::Checkpoint,
        ];
        assert_eq!(model_answer(&ops, &r), vec![RecordId(2)]);
    }

    #[test]
    fn sweep_one_seed_clean() {
        let dir = scratch("sweep");
        let cfg = TraceConfig {
            ops: 24,
            checkpoint_every: 8,
            delete_fraction: 0.25,
        };
        let outcome = crash_sweep(3, &dir, &cfg);
        assert!(outcome.writes > 0);
        assert!(
            outcome.failures.is_empty(),
            "differential failures: {:#?}",
            outcome.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_trials_stay_truthful() {
        let dir = scratch("rot");
        let failures = corruption_trials(11, &dir, 6);
        assert!(failures.is_empty(), "{failures:#?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
