//! Concurrent read/write throughput sweep for the index service: snapshot
//! readers and submitter threads hammer one `ConcurrentIndex` (single
//! group-commit writer) across a readers × submitters × max-batch grid,
//! and the sweep emits a hand-rolled `results/concurrent.json` in the same
//! style as `results/throughput.json`, plus a summary table.
//!
//! A second sweep drives the *sharded* service across 1/2/4/8 shards with
//! a fixed reader/submitter population and records the write-throughput
//! scaling baseline in `results/BENCH_sharded.json`.
//!
//! Usage:
//!   concurrent_bench [--millis N] [--records N] [--out FILE]
//!                    [--sharded-out FILE]

use segidx_concurrent::{ConcurrentIndex, IndexOp, ShardedIndex, SubmitError, ZOrderRouter};
use segidx_core::{IntervalIndex, RecordId, SRTree};
use segidx_geom::Rect;
use segidx_workloads::{queries_for_qar, DataDistribution, DOMAIN_MAX};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

struct Args {
    millis: u64,
    records: usize,
    out: PathBuf,
    sharded_out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        millis: 400,
        records: 10_000,
        out: PathBuf::from("results/concurrent.json"),
        sharded_out: PathBuf::from("results/BENCH_sharded.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--millis" => args.millis = value("--millis")?.parse().map_err(|e| format!("{e}"))?,
            "--records" => {
                args.records = value("--records")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--sharded-out" => args.sharded_out = PathBuf::from(value("--sharded-out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: concurrent_bench [--millis N] [--records N] [--out FILE] \
                     [--sharded-out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

struct Cell {
    readers: usize,
    submitters: usize,
    max_batch: usize,
    read_qps: u64,
    write_ops_per_sec: u64,
    commits_per_sec: u64,
    mean_commit_batch: f64,
    overloads: u64,
}

/// One grid cell: `readers` snapshot-read threads and `submitters`
/// mutation threads against a fresh index for `duration`.
fn run_cell(
    records: &[(Rect<2>, RecordId)],
    probes: &[Rect<2>],
    readers: usize,
    submitters: usize,
    max_batch: usize,
    duration: Duration,
) -> Cell {
    let mut seed = SRTree::<2>::new();
    for (r, id) in records {
        seed.insert(*r, *id);
    }
    let index = ConcurrentIndex::builder(seed.into_tree())
        .queue_capacity(4 * max_batch.max(256))
        .max_batch(max_batch)
        .start()
        .expect("memory-only start cannot fail");

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for reader_id in 0..readers {
            let handle = index.handle();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut local = 0u64;
                let mut it = reader_id;
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    std::hint::black_box(snap.search(&probes[it % probes.len()]));
                    it += 1;
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        for sub_id in 0..submitters {
            let handle = index.handle();
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            let base = records.len() as u64 * (sub_id as u64 + 2);
            scope.spawn(move || {
                let mut local = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Insert a fresh record, then delete it two steps later,
                    // so the live set stays near the initial size.
                    let id = base + i;
                    let x = ((id * 37) % 5_000) as f64;
                    let rect = Rect::new([x, x * 0.5], [x + 30.0, x * 0.5 + 2.0]);
                    let op = if i % 3 == 2 {
                        IndexOp::Delete {
                            rect,
                            record: RecordId(id),
                        }
                    } else {
                        IndexOp::Insert {
                            rect,
                            record: RecordId(id),
                        }
                    };
                    match handle.submit(op) {
                        Ok(_) => {
                            local += 1;
                            i += 1;
                        }
                        Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                        Err(SubmitError::Closed) => break,
                    }
                }
                writes.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    index.flush().expect("memory-only flush cannot fail");

    let telemetry = index.telemetry();
    let commits = telemetry.commits();
    let applied = telemetry.ops_applied();
    let secs = duration.as_secs_f64();
    let cell = Cell {
        readers,
        submitters,
        max_batch,
        read_qps: (reads.load(Ordering::Relaxed) as f64 / secs) as u64,
        write_ops_per_sec: (writes.load(Ordering::Relaxed) as f64 / secs) as u64,
        commits_per_sec: (commits as f64 / secs) as u64,
        mean_commit_batch: if commits == 0 {
            0.0
        } else {
            applied as f64 / commits as f64
        },
        overloads: telemetry.overloads(),
    };
    index.shutdown();
    cell
}

struct ShardedCell {
    shards: usize,
    read_qps: u64,
    write_ops_per_sec: u64,
    commits_per_sec: u64,
    mean_commit_batch: f64,
    overloads: u64,
    imbalance: f64,
    global_epochs: u64,
}

/// A write op spread across the whole domain (decorrelated x/y so Z-order
/// routing reaches every shard), cycling insert/insert/delete like the
/// unsharded cell.
fn sharded_op(id: u64, step: u64) -> IndexOp<2> {
    let x = ((id * 6_151) % 99_000) as f64;
    let y = ((id * 14_741) % 99_000) as f64;
    let rect = Rect::new([x, y], [x + 400.0, y + 40.0]);
    if step % 3 == 2 {
        IndexOp::Delete {
            rect,
            record: RecordId(id),
        }
    } else {
        IndexOp::Insert {
            rect,
            record: RecordId(id),
        }
    }
}

/// One sharded sweep point: a fixed reader/submitter population against
/// `shards` group-commit writers behind Z-order routing.
fn run_sharded_cell(
    records: &[(Rect<2>, RecordId)],
    probes: &[Rect<2>],
    shards: usize,
    readers: usize,
    submitters: usize,
    max_batch: usize,
    duration: Duration,
) -> ShardedCell {
    let router = ZOrderRouter::new(Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX]), shards);
    let trees = router
        .partition(records)
        .iter()
        .map(|part| {
            let mut seed = SRTree::<2>::new();
            for (r, id) in part {
                seed.insert(*r, *id);
            }
            seed.into_tree()
        })
        .collect();
    let index = ShardedIndex::builder(router, trees)
        .queue_capacity(4 * max_batch.max(256))
        .max_batch(max_batch)
        .start()
        .expect("memory-only start cannot fail");

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for reader_id in 0..readers {
            let handle = index.handle();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut local = 0u64;
                let mut it = reader_id;
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    std::hint::black_box(snap.search(&probes[it % probes.len()]));
                    it += 1;
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        for sub_id in 0..submitters {
            let handle = index.handle();
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            let base = records.len() as u64 * (sub_id as u64 + 2);
            scope.spawn(move || {
                let mut local = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match handle.submit(sharded_op(base + i, i)) {
                        Ok(_) => {
                            local += 1;
                            i += 1;
                        }
                        Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                        Err(SubmitError::Closed) => break,
                    }
                }
                writes.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    index.flush().expect("memory-only flush cannot fail");

    let (mut commits, mut applied, mut overloads) = (0u64, 0u64, 0u64);
    for shard in 0..shards {
        let t = index.shard_telemetry(shard);
        commits += t.commits();
        applied += t.ops_applied();
        overloads += t.overloads();
    }
    let secs = duration.as_secs_f64();
    let cell = ShardedCell {
        shards,
        read_qps: (reads.load(Ordering::Relaxed) as f64 / secs) as u64,
        write_ops_per_sec: (writes.load(Ordering::Relaxed) as f64 / secs) as u64,
        commits_per_sec: (commits as f64 / secs) as u64,
        mean_commit_batch: if commits == 0 {
            0.0
        } else {
            applied as f64 / commits as f64
        },
        overloads,
        imbalance: index.routing_stats().imbalance(),
        global_epochs: index.global_epoch(),
    };
    index.shutdown();
    cell
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(mut z: i64) -> (i64, u32, u32) {
    z += 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64 / 86_400)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dataset = DataDistribution::I3.generate(args.records, 7);
    let probes: Vec<Rect<2>> = [0.01, 1.0, 500.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 20, 3).queries)
        .collect();
    let duration = Duration::from_millis(args.millis);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("readers  submitters  max_batch  read_qps  write_ops/s  commits/s  mean_batch");
    let mut cells = Vec::new();
    for readers in [1usize, 2, 4] {
        for submitters in [1usize, 2] {
            for max_batch in [32usize, 256] {
                let cell = run_cell(
                    &dataset.records,
                    &probes,
                    readers,
                    submitters,
                    max_batch,
                    duration,
                );
                println!(
                    "{:>7}  {:>10}  {:>9}  {:>8}  {:>11}  {:>9}  {:>10.1}",
                    cell.readers,
                    cell.submitters,
                    cell.max_batch,
                    cell.read_qps,
                    cell.write_ops_per_sec,
                    cell.commits_per_sec,
                    cell.mean_commit_batch,
                );
                cells.push(cell);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"concurrent snapshot reads vs single-writer group commit\",\n",
    );
    json.push_str(&format!("  \"date\": \"{}\",\n", today()));
    json.push_str(
        "  \"method\": \"crates/bench/src/bin/concurrent_bench.rs; SRTree-backed \
         ConcurrentIndex over a 10k-record I3 dataset, 60 mixed-QAR probes; each cell runs \
         snapshot-read threads and submitter threads for a fixed wall-clock window\",\n",
    );
    json.push_str(&format!(
        "  \"hardware_note\": \"container run (available_parallelism = {cores}); with a single \
         core, reader/submitter scaling interleaves on one CPU - absolute numbers need \
         multi-core hardware\",\n"
    ));
    json.push_str(&format!("  \"n_records\": {},\n", args.records));
    json.push_str(&format!("  \"window_millis\": {},\n", args.millis));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"readers\": {}, \"submitters\": {}, \"max_batch\": {}, \
             \"read_qps\": {}, \"write_ops_per_sec\": {}, \"commits_per_sec\": {}, \
             \"mean_commit_batch\": {:.1}, \"overloads\": {} }}{}\n",
            c.readers,
            c.submitters,
            c.max_batch,
            c.read_qps,
            c.write_ops_per_sec,
            c.commits_per_sec,
            c.mean_commit_batch,
            c.overloads,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&args.out, json).expect("write results");
    println!("concurrent_bench: wrote {}", args.out.display());

    // Sharded scaling sweep: same reader/submitter population, shard count
    // doubling 1 → 8.
    println!();
    println!(" shards  read_qps  write_ops/s  commits/s  mean_batch  imbalance");
    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cell = run_sharded_cell(&dataset.records, &probes, shards, 2, 4, 128, duration);
        println!(
            "{:>7}  {:>8}  {:>11}  {:>9}  {:>10.1}  {:>9.2}",
            cell.shards,
            cell.read_qps,
            cell.write_ops_per_sec,
            cell.commits_per_sec,
            cell.mean_commit_batch,
            cell.imbalance,
        );
        sharded.push(cell);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"sharded multi-writer scaling (Z-order routed shards, cross-shard epoch snapshots)\",\n");
    json.push_str(&format!("  \"date\": \"{}\",\n", today()));
    json.push_str(
        "  \"method\": \"crates/bench/src/bin/concurrent_bench.rs; SRTree shards over an \
         I3 dataset partitioned by ZOrderRouter, 60 mixed-QAR probes; every cell runs 2 \
         global-snapshot reader threads and 4 routed submitter threads for a fixed window \
         while only the shard count changes\",\n",
    );
    json.push_str(&format!(
        "  \"hardware_note\": \"container run (available_parallelism = {cores}); shard writer \
         threads interleave on {cores} core(s), so write-throughput scaling with shard count \
         needs a multi-core runner to materialize - single-core numbers chiefly validate \
         that sharding adds no regression\",\n"
    ));
    json.push_str(&format!("  \"n_records\": {},\n", args.records));
    json.push_str(&format!("  \"window_millis\": {},\n", args.millis));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"readers\": 2,\n");
    json.push_str("  \"submitters\": 4,\n");
    json.push_str("  \"max_batch\": 128,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in sharded.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"shards\": {}, \"read_qps\": {}, \"write_ops_per_sec\": {}, \
             \"commits_per_sec\": {}, \"mean_commit_batch\": {:.1}, \"overloads\": {}, \
             \"routing_imbalance\": {:.3}, \"global_epochs\": {} }}{}\n",
            c.shards,
            c.read_qps,
            c.write_ops_per_sec,
            c.commits_per_sec,
            c.mean_commit_batch,
            c.overloads,
            c.imbalance,
            c.global_epochs,
            if i + 1 == sharded.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = args.sharded_out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&args.sharded_out, json).expect("write sharded results");
    println!("concurrent_bench: wrote {}", args.sharded_out.display());
    ExitCode::SUCCESS
}
