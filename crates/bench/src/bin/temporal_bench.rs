//! Append-optimized temporal ingest: the tiered LSM-of-packed-trees index
//! against in-place inserts into one flat SR-Tree, on a monotone
//! end-time version stream (the shape a temporal table's archive tier
//! sees: every closed version's end time is the current clock). Results
//! land in `results/BENCH_temporal.json` (same `hardware_note` convention
//! as `results/BENCH_hint.json`).
//!
//! Two measurements:
//!
//! 1. **Ingest throughput**: wall-clock over the full stream. The tiered
//!    index absorbs writes into a bounded memtable and turns them into
//!    packed immutable tiers via the bulk loader, so its per-insert cost
//!    stays flat while the in-place tree pays ever-deeper traversals and
//!    node splits. `--check` asserts ≥ 3× at ≥ 1M intervals.
//! 2. **Query equivalence**: a window-query probe set must return
//!    bit-identical id sets from both indexes — speed must not change
//!    answers.
//!
//! With `--metrics-out FILE` the run also snapshots the
//! `segidx_temporal_*` telemetry family for `metrics_check --temporal`.
//!
//! Usage:
//!   temporal_bench [--records N] [--queries N] [--out FILE]
//!                  [--metrics-out FILE] [--check]

use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::Rect;
use segidx_obs::MetricsRegistry;
use segidx_temporal::{TieredConfig, TieredTelemetry, TieredTemporalIndex};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Args {
    records: usize,
    queries: usize,
    out: PathBuf,
    metrics_out: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    // 1M intervals is where the in-place tree's depth and split costs are
    // fully developed; the `--check` gate refuses smaller runs because at
    // toy sizes both sides fit in cache and the ratio is noise.
    let mut args = Args {
        records: 1_000_000,
        queries: 256,
        out: PathBuf::from("results/BENCH_temporal.json"),
        metrics_out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--records" => {
                args.records = value("--records")?.parse().map_err(|e| format!("{e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--check" => args.check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: temporal_bench [--records N] [--queries N] [--out FILE] \
                     [--metrics-out FILE] [--check]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic splitmix64 stream (no external RNG deps).
struct Rng(u64);
impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A monotone end-time version stream: record `i` closes at time `i`
/// (versions retire in clock order), having lived a mostly-short duration
/// with a sparse long tail — the paper's I-series shape stretched along
/// the time axis. Dimension 0 is the version's `[from, to]` lifetime,
/// dimension 1 its duration (the axis `WITHIN ... DURATION` bands query).
fn version_stream(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = Rng(seed);
    (0..n as u64)
        .map(|i| {
            let end = i as f64;
            let dur = if rng.next_u64() & 63 == 0 {
                1_000.0 + rng.next_f64() * 9_000.0
            } else {
                1.0 + rng.next_f64() * 100.0
            };
            (Rect::new([end - dur, dur], [end, dur]), RecordId(i))
        })
        .collect()
}

/// Time-window × duration-band probes spread over the occupied domain.
fn probe_windows(n: usize, horizon: f64, seed: u64) -> Vec<Rect<2>> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| {
            let t = rng.next_f64() * horizon * 0.95;
            let w = 1.0 + rng.next_f64() * horizon * 0.001;
            let lo = rng.next_f64() * 100.0;
            let hi = lo + 1.0 + rng.next_f64() * 400.0;
            Rect::new([t, lo], [t + w, hi])
        })
        .collect()
}

fn civil_from_days(mut z: i64) -> (i64, u32, u32) {
    z += 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64 / 86_400)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stream = version_stream(args.records, 17);
    println!(
        "temporal ingest: {} monotone end-time versions",
        args.records
    );

    // ---- 1. Tiered ingest (memtable -> sealed packed tiers) -----------
    let registry = MetricsRegistry::new();
    let telemetry = Arc::new(TieredTelemetry::new());
    telemetry.register(&registry, &[]);
    let mut tiered = TieredTemporalIndex::<2>::new(TieredConfig::default());
    tiered.set_telemetry(Some(Arc::clone(&telemetry)));
    let start = Instant::now();
    for (rect, id) in &stream {
        tiered.insert(*rect, *id).expect("tiered insert");
    }
    let tiered_nanos = start.elapsed().as_nanos() as u64;
    tiered.assert_invariants();
    println!(
        "  tiered:  {:>7.0} ns/insert ({:.2} M inserts/s, {} tiers)",
        tiered_nanos as f64 / args.records as f64,
        args.records as f64 * 1e3 / tiered_nanos as f64,
        tiered.tier_count()
    );

    // ---- 2. In-place baseline (one flat SR-Tree) ----------------------
    let mut flat = Tree::<2>::new(IndexConfig::srtree());
    let start = Instant::now();
    for (rect, id) in &stream {
        flat.insert(*rect, *id);
    }
    let flat_nanos = start.elapsed().as_nanos() as u64;
    println!(
        "  in-place: {:>6.0} ns/insert ({:.2} M inserts/s)",
        flat_nanos as f64 / args.records as f64,
        args.records as f64 * 1e3 / flat_nanos as f64
    );
    let speedup = flat_nanos as f64 / tiered_nanos as f64;
    println!("  speedup: {speedup:.2}x");

    // ---- 3. Query equivalence -----------------------------------------
    let probes = probe_windows(args.queries, args.records as f64, 29);
    let mut mismatches = 0usize;
    let mut total_hits = 0usize;
    for q in &probes {
        let mut a = tiered.search(q);
        let mut b = flat.search(q);
        a.sort_unstable_by_key(|r| r.0);
        b.sort_unstable_by_key(|r| r.0);
        total_hits += b.len();
        if a != b {
            mismatches += 1;
        }
    }
    println!(
        "  queries: {} probes, {} hits, {} mismatches",
        args.queries, total_hits, mismatches
    );

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create metrics dir");
        }
        std::fs::write(path, registry.snapshot().to_json()).expect("write metrics");
        println!("temporal_bench: wrote {}", path.display());
    }

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"append-optimized tiered temporal ingest vs in-place SR-Tree\",\n",
    );
    json.push_str(&format!("  \"date\": \"{}\",\n", today()));
    json.push_str(
        "  \"method\": \"crates/bench/src/bin/temporal_bench.rs; one monotone end-time \
         version stream (short durations, sparse long tail) inserted once into the tiered \
         LSM index (default config: 8192-entry seals, fanout-4 leveled merges, inline) and \
         once into a flat SR-Tree via in-place inserts; wall-clock over each full pass, \
         then a window-query probe set compared for bit-identical id sets\",\n",
    );
    json.push_str(&format!(
        "  \"hardware_note\": \"container run (available_parallelism = {cores}); \
         single-threaded ingest passes - the speedup ratio is the signal, absolute \
         latencies vary with the runner\",\n"
    ));
    json.push_str(&format!("  \"n_records\": {},\n", args.records));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"tiered_ingest\": {\n");
    json.push_str(&format!("    \"total_nanos\": {tiered_nanos},\n"));
    json.push_str(&format!(
        "    \"nanos_per_insert\": {:.1},\n",
        tiered_nanos as f64 / args.records as f64
    ));
    json.push_str(&format!(
        "    \"inserts_per_sec\": {:.0},\n",
        args.records as f64 * 1e9 / tiered_nanos as f64
    ));
    json.push_str(&format!("    \"tiers\": {},\n", tiered.tier_count()));
    json.push_str(&format!("    \"len\": {}\n  }},\n", tiered.len()));
    json.push_str("  \"inplace_ingest\": {\n");
    json.push_str(&format!("    \"total_nanos\": {flat_nanos},\n"));
    json.push_str(&format!(
        "    \"nanos_per_insert\": {:.1},\n",
        flat_nanos as f64 / args.records as f64
    ));
    json.push_str(&format!(
        "    \"inserts_per_sec\": {:.0}\n  }},\n",
        args.records as f64 * 1e9 / flat_nanos as f64
    ));
    json.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    json.push_str("  \"query_verification\": {\n");
    json.push_str(&format!("    \"probes\": {},\n", args.queries));
    json.push_str(&format!("    \"total_hits\": {total_hits},\n"));
    json.push_str(&format!("    \"mismatches\": {mismatches}\n  }}\n"));
    json.push_str("}\n");
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&args.out, json).expect("write results");
    println!("temporal_bench: wrote {}", args.out.display());

    // ---- Acceptance gates ----------------------------------------------
    if args.check {
        let mut problems = Vec::new();
        if args.records < 1_000_000 {
            problems.push(format!(
                "--check requires --records >= 1000000 (got {})",
                args.records
            ));
        }
        if speedup < 3.0 {
            problems.push(format!(
                "tiered ingest speedup {speedup:.2}x is below the 3x gate"
            ));
        }
        if mismatches > 0 {
            problems.push(format!(
                "{mismatches} of {} probe queries returned different id sets",
                args.queries
            ));
        }
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("temporal_bench: CHECK FAILED: {p}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "temporal_bench: checks passed (ingest {speedup:.2}x >= 3x, {} probes bit-identical)",
            args.queries
        );
    }
    ExitCode::SUCCESS
}
