//! Tracing overhead gate + example-trace artifact for CI.
//!
//! Two jobs:
//!
//! 1. **Example trace**: forces one sampled 2-D window search against a
//!    4-shard [`ShardedIndex`] of [`HybridIndex`] engines plus a persisted
//!    replica read through a deliberately small [`BufferPool`], so a single
//!    trace spans router decision → per-shard scatter → per-level node
//!    visits → buffer-pool / page I/O. The trace is printed as a text tree
//!    and exported as Chrome `trace_event` JSON (`results/trace_example.json`
//!    by default, loadable in `chrome://tracing` / Perfetto).
//! 2. **Overhead**: the tracing hooks cost one thread-local branch per span
//!    site when no trace is active. Interleaved paired rounds compare the
//!    instrumented [`Tree::search_with`] (tracing compiled in, no active
//!    trace) against [`Tree::bench_search_untraced`] (the monomorphized
//!    no-telemetry kernel instantiation); `--check` gates the median
//!    per-round ratio at ≤ 1.05.
//!
//! Results land in `results/BENCH_trace.json` (same `hardware_note`
//! convention as `results/BENCH_hint.json`).
//!
//! Usage:
//!   trace_profile [--records N] [--queries N] [--rounds N] [--out FILE]
//!                 [--trace-out FILE] [--check]

use segidx_concurrent::{IndexOp, ShardedIndex, SubmitError, ZOrderRouter};
use segidx_core::tree::Tree;
use segidx_core::{persist, HybridIndex, IndexConfig, PagedSearcher, SearchCursor};
use segidx_geom::Rect;
use segidx_obs::json::{self, Value};
use segidx_obs::trace::{chrome_trace_json, CompletedTrace, Dim, OpClass, Tracer};
use segidx_storage::{BufferPool, BufferPoolConfig, DiskManager};
use segidx_workloads::{DataDistribution, DOMAIN_MAX};
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Untraced-vs-baseline overhead gate, as a ratio (1.05 = +5%).
///
/// The two sides run identical machine code modulo one thread-local
/// branch, but the measured ratio swings by a few percent with binary
/// layout: rebuilding the same measurement after *unrelated* workspace
/// changes has produced 0.94–1.02 (code alignment shifting I-cache
/// behavior, not tracing cost). The gate therefore sits outside that
/// noise band; accidentally linking tracing work into the untraced
/// kernel costs far more than 5% and still trips it.
const OVERHEAD_GATE: f64 = 1.05;

struct Args {
    records: usize,
    queries: usize,
    rounds: usize,
    out: PathBuf,
    trace_out: PathBuf,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        records: 200_000,
        queries: 400,
        rounds: 9,
        out: PathBuf::from("results/BENCH_trace.json"),
        trace_out: PathBuf::from("results/trace_example.json"),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--records" => {
                args.records = value("--records")?.parse().map_err(|e| format!("{e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--rounds" => args.rounds = value("--rounds")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--trace-out" => args.trace_out = PathBuf::from(value("--trace-out")?),
            "--check" => args.check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: trace_profile [--records N] [--queries N] [--rounds N] \
                     [--out FILE] [--trace-out FILE] [--check]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic splitmix64 stream (no external RNG deps).
struct Rng(u64);
impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(mut z: i64) -> (i64, u32, u32) {
    z += 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64 / 86_400)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Forces one fully-instrumented 2-D window search and returns the trace:
/// a 4-shard service over hybrid engines answers the window via threaded
/// scatter/gather, then a persisted replica of the same data answers it
/// again through a cold 64 KB buffer pool, all inside one trace guard.
fn record_example_trace() -> Result<CompletedTrace, String> {
    let n = 20_000;
    let dataset = DataDistribution::I3.generate(n, 7);
    let domain = Rect::new([0.0, 0.0], [DOMAIN_MAX * 1.05, DOMAIN_MAX * 1.05]);

    // The sharded service: 4 hybrid engines behind a Z-order router.
    let tracer = Arc::new(Tracer::with_config(1, 2, 4096));
    let engines = vec![
        HybridIndex::<2>::new(),
        HybridIndex::<2>::new(),
        HybridIndex::<2>::new(),
        HybridIndex::<2>::new(),
    ];
    let index = ShardedIndex::builder(ZOrderRouter::new(domain, 4), engines)
        .max_batch(512)
        .tracer(Arc::clone(&tracer))
        .start()
        .map_err(|e| format!("sharded start: {e}"))?;
    for (rect, record) in &dataset.records {
        loop {
            match index.submit(IndexOp::Insert {
                rect: *rect,
                record: *record,
            }) {
                Ok(_) => break,
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(e) => return Err(format!("submit: {e}")),
            }
        }
    }
    index.flush().map_err(|e| format!("flush: {e}"))?;

    // The persisted replica: same records through an on-disk SR-Tree read
    // by a PagedSearcher over a pool small enough to actually miss.
    let mut replica: Tree<2> = Tree::new(IndexConfig::srtree());
    for (rect, record) in &dataset.records {
        replica.insert(*rect, *record);
    }
    let dir = std::env::temp_dir().join(format!("segidx-trace-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("tempdir: {e}"))?;
    let disk = Arc::new(
        DiskManager::create(dir.join("replica.db")).map_err(|e| format!("disk create: {e}"))?,
    );
    let meta = persist::save(&replica, &disk).map_err(|e| format!("persist: {e}"))?;
    let pool = BufferPool::with_config(
        Arc::clone(&disk),
        BufferPoolConfig {
            capacity_bytes: 64 * 1024,
        },
    );
    // One forced trace around both halves of the read.
    let window = Rect::new(
        [DOMAIN_MAX * 0.1, DOMAIN_MAX * 0.1],
        [DOMAIN_MAX * 0.9, DOMAIN_MAX * 0.9],
    );
    let (sharded_hits, paged_hits) = {
        let paged: PagedSearcher<2> =
            PagedSearcher::open(&pool, meta).map_err(|e| format!("paged open: {e}"))?;

        // Warm the replica's upper levels so the trace shows buffer-pool
        // hits alongside the cold leaf misses.
        let _ = paged
            .search(&Rect::new([0.0, 0.0], [1.0, 1.0]))
            .map_err(|e| format!("warm-up search: {e}"))?;

        let _g = tracer
            .force(OpClass::Search, "window_2d")
            .expect("no other trace is active on this thread");
        let snap = index.snapshot();
        let sharded_hits = snap.search_batch(&[window])[0].len();
        let paged_hits = paged
            .search(&window)
            .map_err(|e| format!("paged search: {e}"))?
            .len();
        (sharded_hits, paged_hits)
    };
    index.shutdown();
    drop(pool);
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);

    let trace = tracer
        .last_completed()
        .ok_or("tracer recorded no completed trace")?;
    let problems = trace.check_well_formed();
    if !problems.is_empty() {
        return Err(format!("trace is malformed: {problems:?}"));
    }
    if sharded_hits != paged_hits {
        return Err(format!(
            "sharded ({sharded_hits}) and paged ({paged_hits}) disagree on the window"
        ));
    }

    // The acceptance shape: one trace covering every layer of the stack.
    for required in ["sharded.scatter", "router", "tree.search", "paged.search"] {
        if !trace.spans.iter().any(|s| s.name == required) {
            return Err(format!("trace is missing a \"{required}\" span"));
        }
    }
    if !trace.spans.iter().any(|s| s.name.starts_with("shard.")) {
        return Err("trace has no per-shard scatter span".into());
    }
    if trace.profile.dim(Dim::ShardFanout) != 4 {
        return Err(format!(
            "expected fanout 4, got {}",
            trace.profile.dim(Dim::ShardFanout)
        ));
    }
    if trace.profile.total_node_visits() == 0 {
        return Err("profile recorded no per-level node visits".into());
    }
    if trace.profile.dim(Dim::PageReads) == 0 || trace.profile.dim(Dim::BufferPoolMisses) == 0 {
        return Err("profile recorded no buffer-pool / page I/O".into());
    }
    Ok(trace)
}

/// Interleaved per-round wall times for the instrumented search path with
/// tracing inactive vs the monomorphized untraced kernel, over the same
/// tree and query batch (a, b, a, b, ... so clock noise hits both sides).
fn time_overhead_rounds(
    tree: &Tree<2>,
    queries: &[Rect<2>],
    rounds: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut cursor = SearchCursor::new();
    let (mut instrumented, mut baseline) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        let start = Instant::now();
        let mut found = 0usize;
        for q in queries {
            found += tree.search_with(&mut cursor, q).len();
        }
        black_box(found);
        instrumented.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        let mut found = 0usize;
        for q in queries {
            found += tree.bench_search_untraced(&mut cursor, q).len();
        }
        black_box(found);
        baseline.push(start.elapsed().as_nanos() as u64);
    }
    (instrumented, baseline)
}

/// Median of the per-round ratios `instrumented_i / baseline_i`.
fn median_ratio(instrumented: &[u64], baseline: &[u64]) -> f64 {
    let mut ratios: Vec<f64> = instrumented
        .iter()
        .zip(baseline)
        .map(|(&i, &b)| i as f64 / b as f64)
        .collect();
    ratios.sort_unstable_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- 1. The example trace ------------------------------------------
    let trace = match record_example_trace() {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("trace_profile: example trace failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Page-I/O-heavy traces render thousands of leaf-read lines; keep the
    // console preview short — the full trace goes to the Chrome export.
    let rendered = trace.render_text_tree();
    let total_lines = rendered.lines().count();
    for line in rendered.lines().take(48) {
        println!("{line}");
    }
    if total_lines > 48 {
        println!("  … {} more lines (see Chrome export)", total_lines - 48);
    }
    let chrome = chrome_trace_json(std::slice::from_ref(&trace));
    if let Err(e) = json::parse(&chrome) {
        eprintln!("trace_profile: chrome export is not valid JSON: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = args.trace_out.parent() {
        std::fs::create_dir_all(dir).expect("create trace output dir");
    }
    std::fs::write(&args.trace_out, &chrome).expect("write chrome trace");
    println!("trace_profile: wrote {}", args.trace_out.display());

    // ---- 2. Untraced overhead ------------------------------------------
    let dataset = DataDistribution::I3.generate(args.records, 11);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (rect, record) in &dataset.records {
        tree.insert(*rect, *record);
    }
    let mut rng = Rng(23);
    let queries: Vec<Rect<2>> = (0..args.queries)
        .map(|_| {
            let x = rng.next_f64() * DOMAIN_MAX * 0.9;
            let y = rng.next_f64() * DOMAIN_MAX * 0.9;
            let w = DOMAIN_MAX * (0.002 + rng.next_f64() * 0.05);
            let h = DOMAIN_MAX * (0.002 + rng.next_f64() * 0.05);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect();
    // Warm-up round outside the measurement (first touch faults pages in).
    let (_, _) = time_overhead_rounds(&tree, &queries, 1);
    let (mut instrumented, mut baseline) =
        time_overhead_rounds(&tree, &queries, args.rounds.max(3));
    let ratio = median_ratio(&instrumented, &baseline);
    let instrumented_nanos = median(&mut instrumented) / args.queries as u64;
    let baseline_nanos = median(&mut baseline) / args.queries as u64;
    println!(
        "untraced overhead over {} records, {} windows: instrumented {} ns/op, \
         baseline {} ns/op, median per-round ratio {:.4} ({:+.2}%)",
        args.records,
        args.queries,
        instrumented_nanos,
        baseline_nanos,
        ratio,
        (ratio - 1.0) * 100.0
    );

    // ---- JSON ----------------------------------------------------------
    let body = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str("hierarchical tracing: untraced overhead + full-stack example trace".into()),
        ),
        ("date".to_string(), Value::Str(today())),
        (
            "method".to_string(),
            Value::Str(
                "crates/bench/src/bin/trace_profile.rs; (1) one forced trace of a 2-D window \
                 search over a 4-shard hybrid service plus a persisted replica behind a 64 KB \
                 buffer pool, checked well-formed and exported as Chrome trace_event JSON; \
                 (2) interleaved paired rounds of Tree::search_with (tracing inactive) vs \
                 Tree::bench_search_untraced, scored by the median per-round ratio"
                    .into(),
            ),
        ),
        (
            "hardware_note".to_string(),
            Value::Str(format!(
                "container run (available_parallelism = {cores}); single-threaded \
                 microbench, {} interleaved rounds (median of paired per-round ratios) - \
                 relative ratios are the signal, absolute latencies vary with the runner",
                args.rounds.max(3)
            )),
        ),
        ("n_records".to_string(), Value::Int(args.records as i64)),
        ("n_queries".to_string(), Value::Int(args.queries as i64)),
        (
            "overhead".to_string(),
            Value::Object(vec![
                (
                    "instrumented_nanos_per_op".to_string(),
                    Value::Int(instrumented_nanos as i64),
                ),
                (
                    "baseline_nanos_per_op".to_string(),
                    Value::Int(baseline_nanos as i64),
                ),
                ("median_ratio".to_string(), Value::Float(ratio)),
                ("gate_ratio".to_string(), Value::Float(OVERHEAD_GATE)),
            ]),
        ),
        (
            "example_trace".to_string(),
            Value::Object(vec![
                ("trace_id".to_string(), Value::Int(trace.id as i64)),
                ("class".to_string(), Value::Str(trace.class.name().into())),
                (
                    "duration_nanos".to_string(),
                    Value::Int(trace.duration_nanos as i64),
                ),
                ("spans".to_string(), Value::Int(trace.spans.len() as i64)),
                (
                    "dropped_spans".to_string(),
                    Value::Int(trace.dropped_spans as i64),
                ),
                ("profile".to_string(), trace.profile.to_json_value()),
            ]),
        ),
    ])
    .render();
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&args.out, body).expect("write results");
    println!("trace_profile: wrote {}", args.out.display());

    // ---- Acceptance gate -----------------------------------------------
    if args.check {
        if ratio > OVERHEAD_GATE {
            eprintln!(
                "trace_profile: CHECK FAILED: untraced overhead ratio {:.4} exceeds the \
                 {:.2} gate",
                ratio, OVERHEAD_GATE
            );
            return ExitCode::FAILURE;
        }
        println!(
            "trace_profile: checks passed (overhead ratio {:.4} <= {:.2}, trace \
             well-formed across {} spans)",
            ratio,
            OVERHEAD_GATE,
            trace.spans.len()
        );
    }
    ExitCode::SUCCESS
}
