//! Crash-sweep driver: power-cut a deterministic build/insert/delete trace
//! at every write boundary for many seeds, plus bit-rot corruption trials,
//! and fail loudly on any differential mismatch.
//!
//! CI runs `crash_sweep --seeds 64`; a failing seed writes a replayable
//! report (seed, cut index, detail) under `--out` so the artifact upload
//! carries everything needed to reproduce with `--seed <n>`.
//!
//! With `--temporal`, the sweep instead power-cuts the tiered temporal
//! index's seal-and-merge commits ([`segidx_bench::temporal_crash`]) and
//! checks recovery to exactly the last committed tier set.
//!
//! Usage:
//!   crash_sweep [--seeds N] [--seed S] [--ops N] [--checkpoint-every N]
//!               [--corruption-trials N] [--temporal] [--out DIR]

use segidx_bench::crash::{corruption_trials, crash_sweep, SweepFailure, TraceConfig};
use segidx_bench::temporal_crash::{temporal_crash_sweep, TemporalTraceConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    single_seed: Option<u64>,
    trace: TraceConfig,
    corruption_trials: usize,
    temporal: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 8,
        single_seed: None,
        trace: TraceConfig::default(),
        corruption_trials: 4,
        temporal: false,
        out: PathBuf::from("results/crash_sweep"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => {
                args.single_seed = Some(value("--seed")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--ops" => args.trace.ops = value("--ops")?.parse().map_err(|e| format!("{e}"))?,
            "--checkpoint-every" => {
                args.trace.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--corruption-trials" => {
                args.corruption_trials = value("--corruption-trials")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--temporal" => args.temporal = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: crash_sweep [--seeds N] [--seed S] [--ops N] \
                     [--checkpoint-every N] [--corruption-trials N] [--temporal] [--out DIR]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn report_failures(out: &PathBuf, seed: u64, kind: &str, failures: &[SweepFailure]) {
    std::fs::create_dir_all(out).expect("create output dir");
    let path = out.join(format!("seed-{seed}-{kind}.txt"));
    let mut body = String::new();
    for f in failures {
        body.push_str(&format!(
            "seed={} cut_at={} kind={kind}\n{}\n\nreplay: cargo run --release -p segidx-bench \
             --bin crash_sweep -- --seed {}\n",
            f.seed, f.cut_at, f.detail, f.seed
        ));
    }
    std::fs::write(&path, body).expect("write failure report");
    eprintln!("crash_sweep: wrote {}", path.display());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let scratch = std::env::temp_dir().join(format!("segidx-crash-sweep-{}", std::process::id()));
    let seeds: Vec<u64> = match args.single_seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    let mut total_cuts = 0u64;
    let mut failed_seeds = 0u64;
    if args.temporal {
        let cfg = TemporalTraceConfig {
            ops: args.trace.ops,
            seal_every: args.trace.checkpoint_every,
            delete_fraction: args.trace.delete_fraction,
        };
        for &seed in &seeds {
            let outcome = temporal_crash_sweep(seed, &scratch, &cfg);
            total_cuts += outcome.writes + 1;
            if outcome.failures.is_empty() {
                println!("seed {seed:>3}: ok ({} cuts, temporal)", outcome.writes + 1);
            } else {
                failed_seeds += 1;
                report_failures(&args.out, seed, "temporal", &outcome.failures);
                println!(
                    "seed {seed:>3}: FAILED ({} temporal power-cut mismatches)",
                    outcome.failures.len()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&scratch);
        println!(
            "crash_sweep --temporal: {} seeds, {} cut points, {} failing seeds",
            seeds.len(),
            total_cuts,
            failed_seeds
        );
        return if failed_seeds > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for &seed in &seeds {
        let outcome = crash_sweep(seed, &scratch, &args.trace);
        total_cuts += outcome.writes + 1;
        let rot = corruption_trials(seed, &scratch, args.corruption_trials);
        if !outcome.failures.is_empty() {
            report_failures(&args.out, seed, "powercut", &outcome.failures);
        }
        if !rot.is_empty() {
            report_failures(&args.out, seed, "bitrot", &rot);
        }
        if outcome.failures.is_empty() && rot.is_empty() {
            println!(
                "seed {seed:>3}: ok ({} cuts, {} corruption trials)",
                outcome.writes + 1,
                args.corruption_trials
            );
        } else {
            failed_seeds += 1;
            println!(
                "seed {seed:>3}: FAILED ({} power-cut, {} bit-rot mismatches)",
                outcome.failures.len(),
                rot.len()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "crash_sweep: {} seeds, {} cut points, {} failing seeds",
        seeds.len(),
        total_cuts,
        failed_seeds
    );
    if failed_seeds > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
