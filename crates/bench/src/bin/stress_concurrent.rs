//! Deterministic interleaving stress driver for the concurrent index
//! service: for each seed, run every engine (the four paper variants plus
//! HINT) under concurrent readers + a single group-commit writer and
//! validate every reader observation against a serial model of the
//! committed operation prefix.
//!
//! CI runs `stress_concurrent --seeds 32` in release mode; a failing seed
//! writes a replayable report (seed, variant, detail) under `--out` so the
//! artifact upload carries everything needed to reproduce with
//! `--seed <n>`.
//!
//! With `--shards N[,M...]` the same seeds/streams run against the
//! *sharded* service instead (one run per listed shard count), validating
//! cross-shard snapshot consistency with the per-shard-replay serial
//! model; CI runs `--seeds 8 --shards 2,4`.
//!
//! Usage:
//!   stress_concurrent [--seeds N] [--seed S] [--ops N] [--readers N]
//!                     [--initial N] [--shards N[,M...]] [--out DIR]

use segidx_bench::interleave::{stress_seed, stress_seed_sharded, StressConfig, StressFailure};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    single_seed: Option<u64>,
    cfg: StressConfig,
    /// Empty = unsharded service; otherwise one sharded run per count.
    shards: Vec<usize>,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 8,
        single_seed: None,
        cfg: StressConfig::default(),
        shards: Vec::new(),
        out: PathBuf::from("results/concurrent_stress"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => {
                args.single_seed = Some(value("--seed")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--ops" => args.cfg.ops = value("--ops")?.parse().map_err(|e| format!("{e}"))?,
            "--readers" => {
                args.cfg.readers = value("--readers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--initial" => {
                args.cfg.initial = value("--initial")?.parse().map_err(|e| format!("{e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("{e}")))
                    .collect::<Result<Vec<_>, _>>()?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: stress_concurrent [--seeds N] [--seed S] [--ops N] \
                     [--readers N] [--initial N] [--shards N[,M...]] [--out DIR]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn report_failures(out: &PathBuf, seed: u64, failures: &[StressFailure]) {
    std::fs::create_dir_all(out).expect("create output dir");
    let path = out.join(format!("seed-{seed}-interleave.txt"));
    let mut body = String::new();
    for f in failures {
        body.push_str(&format!(
            "seed={} variant={}\n{}\n\nreplay: cargo run --release -p segidx-bench \
             --bin stress_concurrent -- --seed {}\n",
            f.seed, f.variant, f.detail, f.seed
        ));
    }
    std::fs::write(&path, body).expect("write failure report");
    eprintln!("stress_concurrent: wrote {}", path.display());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let seeds: Vec<u64> = match args.single_seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    // Unsharded by default; with --shards, one sharded pass per count.
    let modes: Vec<Option<usize>> = if args.shards.is_empty() {
        vec![None]
    } else {
        args.shards.iter().copied().map(Some).collect()
    };
    let mut total_observations = 0u64;
    let mut total_epochs = 0u64;
    let mut failed_seeds = 0u64;
    for &mode in &modes {
        for &seed in &seeds {
            let outcome = match mode {
                None => stress_seed(seed, &args.cfg),
                Some(shards) => stress_seed_sharded(seed, &args.cfg, shards),
            };
            let tag = match mode {
                None => String::new(),
                Some(shards) => format!(" [{shards} shards]"),
            };
            total_observations += outcome.observations;
            total_epochs += outcome.epochs;
            if outcome.failures.is_empty() {
                println!(
                    "seed {seed:>3}{tag}: ok ({} observations validated, {} epochs published)",
                    outcome.observations, outcome.epochs
                );
            } else {
                failed_seeds += 1;
                report_failures(&args.out, seed, &outcome.failures);
                println!(
                    "seed {seed:>3}{tag}: FAILED ({} violations)",
                    outcome.failures.len()
                );
            }
        }
    }
    println!(
        "stress_concurrent: {} seeds x 5 engines x {} modes, {} observations, {} epochs, \
         {} failing seeds",
        seeds.len(),
        modes.len(),
        total_observations,
        total_epochs,
        failed_seeds
    );
    if failed_seeds > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
