//! Validates a `reproduce --metrics-out` JSON file.
//!
//! CI runs this after the smoke reproduction to guarantee the exported
//! metrics are well-formed: the file parses, is non-empty, every graph
//! carries all five engine labels (the paper's four variants plus
//! `variant="HINT"`), and every (graph, variant) pair carries
//! search/insert latency percentiles, the logical node-access counters,
//! and a buffer-pool hit rate. Metrics
//! carrying a `component` label instead are service families and are
//! validated separately:
//!
//! * `component="concurrent"` — the unsharded index service must export
//!   the epoch/queue-depth/retired-snapshot/retired-highwater gauges,
//!   commit counters and latency histograms, and the event-ring health
//!   pair (`segidx_events_dropped_total` / `segidx_events_buffered`).
//! * `component="sharded"` — every metric must carry a `shard` label;
//!   each numeric shard id must export the full per-shard service family,
//!   and a `shard="all"` aggregate rollup must be present alongside the
//!   sharded-only families (shard count, global epoch, retired epoch
//!   vectors, routing imbalance, routed-op counters).
//! * `component="hybrid"` — the router's `segidx_hybrid_routed_total`
//!   must cover the full engine × query-shape matrix (zeros included).
//! * `component="trace"` — the tracer's health families
//!   (`segidx_trace_*` counters and gauges) must all be present.
//!
//! Finally, the top-level `flight_recorder` object (slowest retained
//! trace per op class) must exist and each entry must carry a positive
//! `retained` count and a `slowest` trace with duration, span count, and
//! profile.
//!
//! With `--server`, the file is instead a `segidx_server` `METRICS`
//! snapshot (what `loadgen --metrics-out` saves): every
//! `segidx_server_*` per-connection family must be present —
//! `requests_total` across all twelve statement forms, `frames_total`
//! for both framing modes, the connection/error/byte counters, and
//! non-empty read *and* write latency histograms — alongside the full
//! index-service family of the backend it fronts
//! (`component="concurrent"` or `"sharded"`) and the temporal tier's
//! gauges/counters (`component="temporal"`, which the server registers
//! for its `RECORD`/`AS OF`/`WITHIN` table).
//!
//! With `--temporal`, the file is a registry snapshot from an ingest
//! run (`temporal_bench --metrics-out`): the full `segidx_temporal_*`
//! family must be present and typed — the four tier-state gauges, the
//! six lifecycle counters, and non-empty seal *and* merge latency
//! histograms (the ingest is sized so both fire).
//!
//! Usage: `metrics_check <path/to/metrics.json>`,
//! `metrics_check --server <path/to/server_metrics.json>`, or
//! `metrics_check --temporal <path/to/temporal_metrics.json>`. Exits
//! non-zero with a description of the first problem found.

use segidx_obs::json::{self, Value};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [path] => ("", path.clone()),
        [flag, path] if flag == "--server" || flag == "--temporal" => (flag.as_str(), path.clone()),
        _ => {
            eprintln!("usage: metrics_check [--server | --temporal] <metrics.json>");
            return ExitCode::from(2);
        }
    };
    let checked = match mode {
        "--server" => check_server_file(&path),
        "--temporal" => check_temporal_file(&path),
        _ => check(&path),
    };
    match checked {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("metrics_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Metrics every (graph, variant) pair must export. Histograms must carry
/// non-null p50/p95/p99 when non-empty.
const REQUIRED_HISTOGRAMS: [&str; 2] =
    ["segidx_search_latency_nanos", "segidx_insert_latency_nanos"];
const REQUIRED_COUNTERS: [&str; 3] = [
    "segidx_search_node_accesses_total",
    "segidx_searches_total",
    "segidx_maintenance_node_accesses_total",
];
const REQUIRED_GAUGES: [&str; 1] = ["segidx_buffer_pool_hit_rate"];

/// Engine labels every graph must export: the paper's four variants plus
/// the HINT baseline the harness runs alongside them.
const EXPECTED_VARIANTS: [&str; 5] = [
    "R-Tree",
    "SR-Tree",
    "Skeleton R-Tree",
    "Skeleton SR-Tree",
    "HINT",
];

/// The index-service family every service scope (the unsharded service,
/// each shard, and the sharded rollup) must export.
const SERVICE_GAUGES: [&str; 5] = [
    "segidx_concurrent_epoch",
    "segidx_concurrent_queue_depth",
    "segidx_concurrent_retired_snapshots",
    "segidx_concurrent_retired_highwater",
    "segidx_concurrent_active_readers",
];
const SERVICE_COUNTERS: [&str; 4] = [
    "segidx_concurrent_commits_total",
    "segidx_concurrent_ops_applied_total",
    "segidx_concurrent_overloads_total",
    "segidx_concurrent_reclaimed_total",
];
const SERVICE_HISTOGRAMS: [&str; 2] = [
    "segidx_concurrent_queue_wait_nanos",
    "segidx_concurrent_commit_latency_nanos",
];

/// Event-sink health metrics, required for `component="concurrent"` only
/// (the sharded exercise runs without a ring sink).
const EVENT_GAUGES: [&str; 1] = ["segidx_events_buffered"];
const EVENT_COUNTERS: [&str; 1] = ["segidx_events_dropped_total"];

/// Sharded-only families on the `shard="all"` rollup.
const SHARDED_ROLLUP_GAUGES: [&str; 5] = [
    "segidx_sharded_shards",
    "segidx_sharded_global_epoch",
    "segidx_sharded_retired_vectors",
    "segidx_sharded_retired_vector_highwater",
    "segidx_sharded_routing_imbalance",
];
const SHARDED_COUNTERS: [&str; 2] = [
    "segidx_sharded_routed_ops_total",
    "segidx_sharded_global_publishes_total",
];

/// Tracer health families, required under `component="trace"`.
const TRACE_COUNTERS: [&str; 3] = [
    "segidx_trace_started_total",
    "segidx_trace_sampled_total",
    "segidx_trace_spans_dropped_total",
];
const TRACE_GAUGES: [&str; 2] = ["segidx_trace_spans_dropped", "segidx_trace_flight_retained"];

/// The hybrid router's engine × shape matrix, required under
/// `component="hybrid"`.
const HYBRID_ENGINES: [&str; 2] = ["hint", "tree"];
const HYBRID_SHAPES: [&str; 5] = ["one_d", "stab", "slab", "window", "nearest"];

/// The per-connection server families (`--server` mode), all labeled
/// `component="server"`.
const SERVER_OPS: [&str; 12] = [
    "search", "stab", "nearest", "insert", "delete", "record", "as_of", "within", "flush", "ping",
    "stats", "metrics",
];
const SERVER_MODES: [&str; 2] = ["binary", "line"];
const SERVER_COUNTERS: [&str; 6] = [
    "segidx_server_connections_total",
    "segidx_server_parse_errors_total",
    "segidx_server_protocol_errors_total",
    "segidx_server_busy_total",
    "segidx_server_bytes_read_total",
    "segidx_server_bytes_written_total",
];
const SERVER_GAUGES: [&str; 1] = ["segidx_server_connections_active"];
const SERVER_HISTOGRAMS: [&str; 2] = [
    "segidx_server_read_latency_nanos",
    "segidx_server_write_latency_nanos",
];

/// The tiered temporal index's family (`component="temporal"`): tier-state
/// gauges, lifecycle counters, and seal/merge latency histograms.
const TEMPORAL_GAUGES: [&str; 4] = [
    "segidx_temporal_tiers",
    "segidx_temporal_memtable_entries",
    "segidx_temporal_sealed_entries",
    "segidx_temporal_tombstones",
];
const TEMPORAL_COUNTERS: [&str; 6] = [
    "segidx_temporal_seals_total",
    "segidx_temporal_merges_total",
    "segidx_temporal_sealed_entries_total",
    "segidx_temporal_merged_entries_total",
    "segidx_temporal_merge_dropped_total",
    "segidx_temporal_exports_total",
];
const TEMPORAL_HISTOGRAMS: [&str; 2] = [
    "segidx_temporal_seal_latency_nanos",
    "segidx_temporal_merge_latency_nanos",
];

fn is_gauge(name: &str) -> bool {
    SERVICE_GAUGES.contains(&name)
        || EVENT_GAUGES.contains(&name)
        || SHARDED_ROLLUP_GAUGES.contains(&name)
        || TRACE_GAUGES.contains(&name)
}

fn is_counter(name: &str) -> bool {
    SERVICE_COUNTERS.contains(&name)
        || EVENT_COUNTERS.contains(&name)
        || SHARDED_COUNTERS.contains(&name)
        || TRACE_COUNTERS.contains(&name)
        || name == "segidx_hybrid_routed_total"
}

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = value
        .get("metrics")
        .and_then(Value::as_array)
        .ok_or("missing top-level \"metrics\" array")?;
    if metrics.is_empty() {
        return Err("\"metrics\" array is empty".into());
    }

    // Group by (graph, variant), remembering which names each pair exported.
    // Metrics labeled with `component` instead belong to a service family
    // and are keyed by (component, shard, name) with shard defaulting to
    // "" when the label is absent.
    let mut pairs: BTreeSet<(String, String)> = BTreeSet::new();
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut components: BTreeSet<String> = BTreeSet::new();
    let mut component_seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut hybrid_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for m in metrics {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metric without a \"name\"")?;
        let labels = m.get("labels").ok_or("metric without \"labels\"")?;
        if let Some(component) = labels.get("component").and_then(Value::as_str) {
            let shard = labels.get("shard").and_then(Value::as_str).unwrap_or("");
            if component == "sharded" && shard.is_empty() {
                return Err(format!("{name} (sharded): missing shard label"));
            }
            if name == "segidx_hybrid_routed_total" {
                let engine = labels.get("engine").and_then(Value::as_str).unwrap_or("");
                let shape = labels.get("shape").and_then(Value::as_str).unwrap_or("");
                if engine.is_empty() || shape.is_empty() {
                    return Err(format!("{name}: missing engine/shape labels"));
                }
                hybrid_seen.insert((engine.to_string(), shape.to_string()));
            }
            validate_component_metric(name, component, m)?;
            components.insert(component.to_string());
            component_seen.insert((component.to_string(), shard.to_string(), name.to_string()));
            continue;
        }
        let graph = labels.get("graph").and_then(Value::as_str).unwrap_or("");
        let variant = labels.get("variant").and_then(Value::as_str).unwrap_or("");
        if graph.is_empty() || variant.is_empty() {
            return Err(format!("{name}: missing graph/variant labels"));
        }
        validate_metric(name, variant, m)?;
        pairs.insert((graph.to_string(), variant.to_string()));
        seen.insert((graph.to_string(), variant.to_string(), name.to_string()));
    }

    let graphs: BTreeSet<&String> = pairs.iter().map(|(g, _)| g).collect();
    for graph in graphs {
        for v in EXPECTED_VARIANTS {
            if !pairs.contains(&(graph.clone(), v.to_string())) {
                return Err(format!(
                    "graph {graph}: missing variant \"{v}\" \
                     (expected the four paper variants plus HINT)"
                ));
            }
        }
    }
    for (graph, variant) in &pairs {
        for name in REQUIRED_HISTOGRAMS
            .iter()
            .chain(&REQUIRED_COUNTERS)
            .chain(&REQUIRED_GAUGES)
        {
            if !seen.contains(&(graph.clone(), variant.clone(), name.to_string())) {
                return Err(format!("graph {graph} / {variant}: missing {name}"));
            }
        }
    }

    check_concurrent(&components, &component_seen)?;
    let shard_scopes = check_sharded(&components, &component_seen)?;
    check_trace(&components, &component_seen)?;
    check_hybrid(&components, &hybrid_seen)?;
    let flight_classes = check_flight_recorder(&value)?;

    Ok(format!(
        "ok: {} metrics across {} (graph, variant) pairs + {} service component(s), \
         {} shard scope(s), {} flight-recorder class(es)",
        metrics.len(),
        pairs.len(),
        components.len(),
        shard_scopes,
        flight_classes
    ))
}

/// `--server` mode: a `segidx_server` `METRICS` snapshot. Every
/// per-connection family must be present and typed correctly, the
/// request counter must cover all nine ops and the frame counter both
/// framing modes, both latency histograms must be non-empty (the smoke
/// workload always performs reads *and* writes), and the index service
/// behind the wire must have exported its own family.
fn check_server_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = value
        .get("metrics")
        .and_then(Value::as_array)
        .ok_or("missing top-level \"metrics\" array")?;
    if metrics.is_empty() {
        return Err("\"metrics\" array is empty".into());
    }

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut ops: BTreeSet<String> = BTreeSet::new();
    let mut modes: BTreeSet<String> = BTreeSet::new();
    let mut components: BTreeSet<String> = BTreeSet::new();
    let mut service_seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut temporal_seen: BTreeSet<String> = BTreeSet::new();
    for m in metrics {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metric without a \"name\"")?;
        let labels = m.get("labels").ok_or("metric without \"labels\"")?;
        let component = labels
            .get("component")
            .and_then(Value::as_str)
            .unwrap_or("");
        components.insert(component.to_string());
        if name.starts_with("segidx_server_") {
            if component != "server" {
                return Err(format!("{name}: expected component=\"server\" label"));
            }
            let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
            if SERVER_HISTOGRAMS.contains(&name) {
                if kind != "histogram" {
                    return Err(format!("{name}: expected histogram, got {kind}"));
                }
                let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
                if count <= 0 {
                    return Err(format!("{name}: empty histogram"));
                }
            } else if SERVER_GAUGES.contains(&name) && kind != "gauge" {
                return Err(format!("{name}: expected gauge, got {kind}"));
            } else if (SERVER_COUNTERS.contains(&name)
                || name == "segidx_server_requests_total"
                || name == "segidx_server_frames_total")
                && kind != "counter"
            {
                return Err(format!("{name}: expected counter, got {kind}"));
            }
            match name {
                "segidx_server_requests_total" => {
                    let op = labels.get("op").and_then(Value::as_str).unwrap_or("");
                    if op.is_empty() {
                        return Err(format!("{name}: missing op label"));
                    }
                    ops.insert(op.to_string());
                }
                "segidx_server_frames_total" => {
                    let mode = labels.get("mode").and_then(Value::as_str).unwrap_or("");
                    if mode.is_empty() {
                        return Err(format!("{name}: missing mode label"));
                    }
                    modes.insert(mode.to_string());
                }
                _ => {}
            }
            seen.insert(name.to_string());
        } else if component == "concurrent" || component == "sharded" {
            let shard = labels.get("shard").and_then(Value::as_str).unwrap_or("");
            service_seen.insert((shard.to_string(), name.to_string()));
        } else if component == "temporal" {
            temporal_seen.insert(name.to_string());
        }
    }

    for name in SERVER_COUNTERS
        .iter()
        .chain(&SERVER_GAUGES)
        .chain(&SERVER_HISTOGRAMS)
    {
        if !seen.contains(*name) {
            return Err(format!("missing {name}"));
        }
    }
    for op in SERVER_OPS {
        if !ops.contains(op) {
            return Err(format!(
                "segidx_server_requests_total: missing op=\"{op}\" \
                 (all twelve statement forms must be exported, zeros included)"
            ));
        }
    }
    for mode in SERVER_MODES {
        if !modes.contains(mode) {
            return Err(format!(
                "segidx_server_frames_total: missing mode=\"{mode}\""
            ));
        }
    }

    // The backend's own service family must ride along in the same
    // snapshot (the rollup scope for sharded backends, unlabeled for the
    // unsharded one).
    let (backend, scope) = if components.contains("sharded") {
        ("sharded", "all")
    } else if components.contains("concurrent") {
        ("concurrent", "")
    } else {
        return Err(
            "missing index-service metrics (component=\"concurrent\" or \"sharded\")".into(),
        );
    };
    for name in SERVICE_GAUGES.iter().chain(&SERVICE_COUNTERS) {
        if !service_seen.contains(&(scope.to_string(), name.to_string())) {
            return Err(format!("backend {backend}: missing {name}"));
        }
    }

    // The temporal tier behind RECORD/AS OF/WITHIN registers its family on
    // the same registry; histograms may be empty (a smoke workload need
    // not seal) but every name must be exported.
    for name in TEMPORAL_GAUGES
        .iter()
        .chain(&TEMPORAL_COUNTERS)
        .chain(&TEMPORAL_HISTOGRAMS)
    {
        if !temporal_seen.contains(*name) {
            return Err(format!(
                "missing temporal-tier metric {name} (component=\"temporal\")"
            ));
        }
    }

    Ok(format!(
        "ok: {} metrics, {} server families, {} ops, backend \"{backend}\"",
        metrics.len(),
        seen.len() + 2,
        ops.len()
    ))
}

/// `--temporal` mode: a registry snapshot from a tiered ingest run
/// (`temporal_bench --metrics-out`). The full `segidx_temporal_*` family
/// must be present under `component="temporal"` and correctly typed, and
/// both latency histograms non-empty — the gated ingest seals and merges
/// many times over.
fn check_temporal_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = value
        .get("metrics")
        .and_then(Value::as_array)
        .ok_or("missing top-level \"metrics\" array")?;
    if metrics.is_empty() {
        return Err("\"metrics\" array is empty".into());
    }

    let mut seen: BTreeSet<String> = BTreeSet::new();
    for m in metrics {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metric without a \"name\"")?;
        if !name.starts_with("segidx_temporal_") {
            continue;
        }
        let labels = m.get("labels").ok_or("metric without \"labels\"")?;
        let component = labels
            .get("component")
            .and_then(Value::as_str)
            .unwrap_or("");
        if component != "temporal" {
            return Err(format!("{name}: expected component=\"temporal\" label"));
        }
        let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
        if TEMPORAL_HISTOGRAMS.contains(&name) {
            if kind != "histogram" {
                return Err(format!("{name}: expected histogram, got {kind}"));
            }
            let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
            if count <= 0 {
                return Err(format!(
                    "{name}: empty histogram (the ingest must seal and merge)"
                ));
            }
        } else if TEMPORAL_COUNTERS.contains(&name) {
            if kind != "counter" {
                return Err(format!("{name}: expected counter, got {kind}"));
            }
        } else if TEMPORAL_GAUGES.contains(&name) {
            if kind != "gauge" {
                return Err(format!("{name}: expected gauge, got {kind}"));
            }
            let v = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: non-numeric value"))?;
            if v < 0.0 {
                return Err(format!("{name}: negative gauge {v}"));
            }
        }
        seen.insert(name.to_string());
    }
    for name in TEMPORAL_GAUGES
        .iter()
        .chain(&TEMPORAL_COUNTERS)
        .chain(&TEMPORAL_HISTOGRAMS)
    {
        if !seen.contains(*name) {
            return Err(format!("missing {name}"));
        }
    }

    Ok(format!(
        "ok: {} metrics, {} temporal families (4 gauges, 6 counters, 2 non-empty histograms)",
        metrics.len(),
        seen.len()
    ))
}

/// The tracer's health families under `component="trace"`.
fn check_trace(
    components: &BTreeSet<String>,
    component_seen: &BTreeSet<(String, String, String)>,
) -> Result<(), String> {
    if !components.contains("trace") {
        return Err("missing component=\"trace\" tracer metrics".into());
    }
    for name in TRACE_COUNTERS.iter().chain(&TRACE_GAUGES) {
        if !component_seen.contains(&("trace".to_string(), String::new(), name.to_string())) {
            return Err(format!("component trace: missing {name}"));
        }
    }
    Ok(())
}

/// The hybrid router's full engine × shape matrix.
fn check_hybrid(
    components: &BTreeSet<String>,
    hybrid_seen: &BTreeSet<(String, String)>,
) -> Result<(), String> {
    if !components.contains("hybrid") {
        return Err("missing component=\"hybrid\" router metrics".into());
    }
    for engine in HYBRID_ENGINES {
        for shape in HYBRID_SHAPES {
            if !hybrid_seen.contains(&(engine.to_string(), shape.to_string())) {
                return Err(format!(
                    "segidx_hybrid_routed_total: missing engine=\"{engine}\" shape=\"{shape}\" \
                     (the full matrix must be exported, zeros included)"
                ));
            }
        }
    }
    Ok(())
}

/// The top-level `flight_recorder` summary: at least one op class, each
/// entry a positive `retained` count plus a `slowest` trace carrying
/// duration, span count, and profile. Returns the class count.
fn check_flight_recorder(value: &Value) -> Result<usize, String> {
    let flight = value
        .get("flight_recorder")
        .ok_or("missing top-level \"flight_recorder\" object")?;
    let Value::Object(classes) = flight else {
        return Err("\"flight_recorder\" is not an object".into());
    };
    if classes.is_empty() {
        return Err("\"flight_recorder\" retained no traces".into());
    }
    for (class, entry) in classes {
        let retained = entry
            .get("retained")
            .and_then(Value::as_i64)
            .ok_or_else(|| format!("flight_recorder.{class}: missing retained count"))?;
        if retained < 1 {
            return Err(format!("flight_recorder.{class}: retained {retained} < 1"));
        }
        let slowest = entry
            .get("slowest")
            .ok_or_else(|| format!("flight_recorder.{class}: missing slowest trace"))?;
        for field in ["trace_id", "duration_nanos", "spans"] {
            let v = slowest
                .get(field)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("flight_recorder.{class}.slowest: missing {field}"))?;
            if v < 0 {
                return Err(format!("flight_recorder.{class}.slowest: negative {field}"));
            }
        }
        if slowest.get("profile").is_none() {
            return Err(format!("flight_recorder.{class}.slowest: missing profile"));
        }
    }
    Ok(classes.len())
}

/// The unsharded service: full service family plus event-sink health, all
/// without a `shard` label.
fn check_concurrent(
    components: &BTreeSet<String>,
    component_seen: &BTreeSet<(String, String, String)>,
) -> Result<(), String> {
    if !components.contains("concurrent") {
        return Err("missing component=\"concurrent\" service metrics".into());
    }
    for name in SERVICE_GAUGES
        .iter()
        .chain(&SERVICE_COUNTERS)
        .chain(&SERVICE_HISTOGRAMS)
        .chain(&EVENT_GAUGES)
        .chain(&EVENT_COUNTERS)
    {
        if !component_seen.contains(&("concurrent".to_string(), String::new(), name.to_string())) {
            return Err(format!("component concurrent: missing {name}"));
        }
    }
    Ok(())
}

/// The sharded service: per-shard service families under numeric shard
/// ids, a `shard="all"` rollup carrying the same family, and the
/// sharded-only rollup gauges/counters. Returns the number of shard
/// scopes validated (numeric ids + the rollup).
fn check_sharded(
    components: &BTreeSet<String>,
    component_seen: &BTreeSet<(String, String, String)>,
) -> Result<usize, String> {
    if !components.contains("sharded") {
        return Err("missing component=\"sharded\" service metrics".into());
    }
    let shards: BTreeSet<&str> = component_seen
        .iter()
        .filter(|(c, _, _)| c == "sharded")
        .map(|(_, s, _)| s.as_str())
        .collect();
    if !shards.contains("all") {
        return Err("component sharded: missing shard=\"all\" aggregate rollup".into());
    }
    let numeric: Vec<&str> = shards
        .iter()
        .copied()
        .filter(|s| s.chars().all(|c| c.is_ascii_digit()) && !s.is_empty())
        .collect();
    if numeric.is_empty() {
        return Err("component sharded: no per-shard (numeric shard id) metrics".into());
    }
    // Every shard scope — each numeric id and the rollup — must carry the
    // full service family plus its routed-op counter.
    for shard in numeric.iter().copied().chain(["all"]) {
        for name in SERVICE_GAUGES
            .iter()
            .chain(&SERVICE_COUNTERS)
            .chain(&SERVICE_HISTOGRAMS)
        {
            if !component_seen.contains(&(
                "sharded".to_string(),
                shard.to_string(),
                name.to_string(),
            )) {
                return Err(format!("component sharded, shard {shard}: missing {name}"));
            }
        }
        if !component_seen.contains(&(
            "sharded".to_string(),
            shard.to_string(),
            "segidx_sharded_routed_ops_total".to_string(),
        )) {
            return Err(format!(
                "component sharded, shard {shard}: missing segidx_sharded_routed_ops_total"
            ));
        }
    }
    for name in SHARDED_ROLLUP_GAUGES.iter().chain(&SHARDED_COUNTERS) {
        if !component_seen.contains(&("sharded".to_string(), "all".to_string(), name.to_string())) {
            return Err(format!(
                "component sharded: missing rollup metric {name} (shard=\"all\")"
            ));
        }
    }
    Ok(numeric.len() + 1)
}

fn validate_component_metric(name: &str, component: &str, m: &Value) -> Result<(), String> {
    let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
    if SERVICE_HISTOGRAMS.contains(&name) {
        if kind != "histogram" {
            return Err(format!(
                "{name} ({component}): expected histogram, got {kind}"
            ));
        }
        let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
        if count <= 0 {
            return Err(format!("{name} ({component}): empty histogram"));
        }
    } else if is_counter(name) && kind != "counter" {
        return Err(format!(
            "{name} ({component}): expected counter, got {kind}"
        ));
    } else if is_gauge(name) {
        if kind != "gauge" {
            return Err(format!("{name} ({component}): expected gauge, got {kind}"));
        }
        let v = m
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{name} ({component}): non-numeric value"))?;
        if v < 0.0 {
            return Err(format!("{name} ({component}): negative gauge {v}"));
        }
    }
    Ok(())
}

fn validate_metric(name: &str, variant: &str, m: &Value) -> Result<(), String> {
    let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
    if REQUIRED_HISTOGRAMS.contains(&name) {
        if kind != "histogram" {
            return Err(format!(
                "{name} ({variant}): expected histogram, got {kind}"
            ));
        }
        let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
        if count <= 0 {
            return Err(format!("{name} ({variant}): empty histogram"));
        }
        for q in ["p50", "p95", "p99"] {
            let v = m
                .get(q)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("{name} ({variant}): missing {q}"))?;
            if v < 0 {
                return Err(format!("{name} ({variant}): negative {q}"));
            }
        }
    } else if REQUIRED_COUNTERS.contains(&name) && kind != "counter" {
        return Err(format!("{name} ({variant}): expected counter, got {kind}"));
    } else if REQUIRED_GAUGES.contains(&name) {
        if kind != "gauge" {
            return Err(format!("{name} ({variant}): expected gauge, got {kind}"));
        }
        let v = m
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{name} ({variant}): non-numeric value"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{name} ({variant}): hit rate {v} outside [0, 1]"));
        }
    }
    Ok(())
}
