//! Validates a `reproduce --metrics-out` JSON file.
//!
//! CI runs this after the smoke reproduction to guarantee the exported
//! metrics are well-formed: the file parses, is non-empty, and every
//! (graph, variant) pair carries search/insert latency percentiles, the
//! logical node-access counters, and a buffer-pool hit rate. Metrics
//! carrying a `component` label instead (the concurrent index service)
//! are validated separately: epoch/queue-depth/retired-snapshot gauges,
//! commit counters and latency histograms, and the event-ring health pair
//! (`segidx_events_dropped_total` / `segidx_events_buffered`) must all be
//! present for `component="concurrent"`.
//!
//! Usage: `metrics_check <path/to/metrics.json>`. Exits non-zero with a
//! description of the first problem found.

use segidx_obs::json::{self, Value};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: metrics_check <metrics.json>");
        return ExitCode::from(2);
    };
    match check(&path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("metrics_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Metrics every (graph, variant) pair must export. Histograms must carry
/// non-null p50/p95/p99 when non-empty.
const REQUIRED_HISTOGRAMS: [&str; 2] =
    ["segidx_search_latency_nanos", "segidx_insert_latency_nanos"];
const REQUIRED_COUNTERS: [&str; 3] = [
    "segidx_search_node_accesses_total",
    "segidx_searches_total",
    "segidx_maintenance_node_accesses_total",
];
const REQUIRED_GAUGES: [&str; 1] = ["segidx_buffer_pool_hit_rate"];

/// Metrics the `component="concurrent"` family must export.
const CONCURRENT_GAUGES: [&str; 5] = [
    "segidx_concurrent_epoch",
    "segidx_concurrent_queue_depth",
    "segidx_concurrent_retired_snapshots",
    "segidx_concurrent_active_readers",
    "segidx_events_buffered",
];
const CONCURRENT_COUNTERS: [&str; 5] = [
    "segidx_concurrent_commits_total",
    "segidx_concurrent_ops_applied_total",
    "segidx_concurrent_overloads_total",
    "segidx_concurrent_reclaimed_total",
    "segidx_events_dropped_total",
];
const CONCURRENT_HISTOGRAMS: [&str; 2] = [
    "segidx_concurrent_queue_wait_nanos",
    "segidx_concurrent_commit_latency_nanos",
];

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = value
        .get("metrics")
        .and_then(Value::as_array)
        .ok_or("missing top-level \"metrics\" array")?;
    if metrics.is_empty() {
        return Err("\"metrics\" array is empty".into());
    }

    // Group by (graph, variant), remembering which names each pair exported.
    // Metrics labeled with `component` instead belong to a service family
    // (the concurrent index) and are collected separately.
    let mut pairs: BTreeSet<(String, String)> = BTreeSet::new();
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut components: BTreeSet<String> = BTreeSet::new();
    let mut component_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for m in metrics {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metric without a \"name\"")?;
        let labels = m.get("labels").ok_or("metric without \"labels\"")?;
        if let Some(component) = labels.get("component").and_then(Value::as_str) {
            validate_component_metric(name, component, m)?;
            components.insert(component.to_string());
            component_seen.insert((component.to_string(), name.to_string()));
            continue;
        }
        let graph = labels.get("graph").and_then(Value::as_str).unwrap_or("");
        let variant = labels.get("variant").and_then(Value::as_str).unwrap_or("");
        if graph.is_empty() || variant.is_empty() {
            return Err(format!("{name}: missing graph/variant labels"));
        }
        validate_metric(name, variant, m)?;
        pairs.insert((graph.to_string(), variant.to_string()));
        seen.insert((graph.to_string(), variant.to_string(), name.to_string()));
    }

    for (graph, variant) in &pairs {
        for name in REQUIRED_HISTOGRAMS
            .iter()
            .chain(&REQUIRED_COUNTERS)
            .chain(&REQUIRED_GAUGES)
        {
            if !seen.contains(&(graph.clone(), variant.clone(), name.to_string())) {
                return Err(format!("graph {graph} / {variant}: missing {name}"));
            }
        }
    }

    if !components.contains("concurrent") {
        return Err("missing component=\"concurrent\" service metrics".into());
    }
    for name in CONCURRENT_GAUGES
        .iter()
        .chain(&CONCURRENT_COUNTERS)
        .chain(&CONCURRENT_HISTOGRAMS)
    {
        if !component_seen.contains(&("concurrent".to_string(), name.to_string())) {
            return Err(format!("component concurrent: missing {name}"));
        }
    }

    Ok(format!(
        "ok: {} metrics across {} (graph, variant) pairs + {} service component(s)",
        metrics.len(),
        pairs.len(),
        components.len()
    ))
}

fn validate_component_metric(name: &str, component: &str, m: &Value) -> Result<(), String> {
    let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
    if CONCURRENT_HISTOGRAMS.contains(&name) {
        if kind != "histogram" {
            return Err(format!(
                "{name} ({component}): expected histogram, got {kind}"
            ));
        }
        let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
        if count <= 0 {
            return Err(format!("{name} ({component}): empty histogram"));
        }
    } else if CONCURRENT_COUNTERS.contains(&name) && kind != "counter" {
        return Err(format!(
            "{name} ({component}): expected counter, got {kind}"
        ));
    } else if CONCURRENT_GAUGES.contains(&name) {
        if kind != "gauge" {
            return Err(format!("{name} ({component}): expected gauge, got {kind}"));
        }
        let v = m
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{name} ({component}): non-numeric value"))?;
        if v < 0.0 {
            return Err(format!("{name} ({component}): negative gauge {v}"));
        }
    }
    Ok(())
}

fn validate_metric(name: &str, variant: &str, m: &Value) -> Result<(), String> {
    let kind = m.get("type").and_then(Value::as_str).unwrap_or("");
    if REQUIRED_HISTOGRAMS.contains(&name) {
        if kind != "histogram" {
            return Err(format!(
                "{name} ({variant}): expected histogram, got {kind}"
            ));
        }
        let count = m.get("count").and_then(Value::as_i64).unwrap_or(0);
        if count <= 0 {
            return Err(format!("{name} ({variant}): empty histogram"));
        }
        for q in ["p50", "p95", "p99"] {
            let v = m
                .get(q)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("{name} ({variant}): missing {q}"))?;
            if v < 0 {
                return Err(format!("{name} ({variant}): negative {q}"));
            }
        }
    } else if REQUIRED_COUNTERS.contains(&name) && kind != "counter" {
        return Err(format!("{name} ({variant}): expected counter, got {kind}"));
    } else if REQUIRED_GAUGES.contains(&name) {
        if kind != "gauge" {
            return Err(format!("{name} ({variant}): expected gauge, got {kind}"));
        }
        let v = m
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{name} ({variant}): non-numeric value"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{name} ({variant}): hit rate {v} outside [0, 1]"));
        }
    }
    Ok(())
}
