//! Reproduces the evaluation graphs of *Segment Indexes* (SIGMOD 1991).
//!
//! ```text
//! reproduce [--graph N | --graph all] [--tuples N] [--queries N]
//!           [--seed N] [--csv DIR] [--metrics-out FILE] [--quick]
//! ```
//!
//! Defaults match the paper: 200,000 tuples, 100 queries per QAR value.
//! `--quick` scales everything down for a fast smoke run.

use segidx_bench::{
    check_exponential_lower, check_paper_shape, render_checks, render_table, run_experiment,
    write_csv, write_metrics_json, Experiment, Graph, GraphResult,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    graphs: Vec<Graph>,
    tuples: usize,
    queries: usize,
    data_seed: u64,
    csv_dir: Option<PathBuf>,
    dump_data: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    inspect: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut graphs: Option<Vec<Graph>> = None;
    let mut tuples = 200_000usize;
    let mut queries = 100usize;
    let mut data_seed = Experiment::paper(Graph::G1).data_seed;
    let mut csv_dir = None;
    let mut dump_data = None;
    let mut metrics_out = None;
    let mut inspect = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--graph" | "-g" => {
                let v = next(&mut i)?;
                if v == "all" {
                    graphs = Some(Graph::ALL.to_vec());
                } else if v == "paper" {
                    graphs = Some(Graph::PAPER.to_vec());
                } else {
                    let n: u32 = v.parse().map_err(|_| format!("bad graph number {v}"))?;
                    let g = Graph::from_number(n).ok_or(format!("no graph {n} (1-8)"))?;
                    graphs.get_or_insert_with(Vec::new).push(g);
                }
            }
            "--tuples" | "-n" => {
                tuples = next(&mut i)?
                    .replace('_', "")
                    .parse()
                    .map_err(|e| format!("bad tuple count: {e}"))?;
            }
            "--queries" | "-q" => {
                queries = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad query count: {e}"))?;
            }
            "--seed" => {
                data_seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(next(&mut i)?));
            }
            "--dump-data" => {
                dump_data = Some(PathBuf::from(next(&mut i)?));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(next(&mut i)?));
            }
            "--inspect" => {
                inspect = true;
            }
            "--quick" => {
                tuples = 20_000;
                queries = 25;
            }
            "--help" | "-h" => {
                println!(
                    "reproduce — regenerate the Segment Indexes evaluation graphs\n\n\
                     --graph N|all|paper  which graph(s) to run (default: paper = 1-6)\n\
                     --tuples N           input size (default 200000, paper setting)\n\
                     --queries N          queries per QAR value (default 100)\n\
                     --seed N             data-generation seed\n\
                     --csv DIR            also write one CSV per graph into DIR\n\
                     --dump-data DIR      export each graph's generated dataset as CSV\n\
                     --metrics-out FILE   write telemetry (latency percentiles, node-access\n\
                                          counters, buffer-pool hit rate) as JSON to FILE\n\
                     --inspect            print per-level structure reports per variant\n\
                     --quick              20K tuples, 25 queries (smoke run)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(Args {
        graphs: graphs.unwrap_or_else(|| Graph::PAPER.to_vec()),
        tuples,
        queries,
        data_seed,
        csv_dir,
        dump_data,
        metrics_out,
        inspect,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            return ExitCode::FAILURE;
        }
    };

    let mut results: Vec<GraphResult> = Vec::new();
    let mut any_critical_miss = false;
    for graph in &args.graphs {
        let experiment = Experiment {
            tuples: args.tuples,
            queries_per_qar: args.queries,
            data_seed: args.data_seed,
            ..Experiment::paper(*graph)
        };
        eprintln!(
            "running graph {} ({}, {} tuples)…",
            graph.number(),
            graph.distribution().name(),
            args.tuples
        );
        if let Some(dir) = &args.dump_data {
            let dataset = experiment.dataset();
            let path = dir.join(format!(
                "{}-{}-seed{}.csv",
                dataset.distribution.name(),
                args.tuples,
                args.data_seed
            ));
            match dataset.write_csv(&path) {
                Ok(()) => eprintln!("dumped dataset to {}", path.display()),
                Err(e) => eprintln!("warning: dataset dump failed: {e}"),
            }
        }
        let result = run_experiment(&experiment);
        println!("{}", render_table(&result));
        if args.inspect {
            for report in segidx_bench::inspect_variants(&experiment) {
                println!("{report}");
            }
        }
        let checks = check_paper_shape(&result);
        println!("paper-shape checks:\n{}", render_checks(&checks));
        any_critical_miss |= checks.iter().any(|c| c.critical && !c.passed);
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("graph{}.csv", graph.number()));
            if let Err(e) = write_csv(&result, &path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        results.push(result);
    }

    if let Some(path) = &args.metrics_out {
        match write_metrics_json(&results, path) {
            Ok(()) => eprintln!("wrote metrics to {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Cross-graph claim: exponential-Y runs have lower node accesses.
    let find = |g: Graph| results.iter().find(|r| r.graph() == g);
    for (u, e) in [(Graph::G1, Graph::G2), (Graph::G3, Graph::G4)] {
        if let (Some(u), Some(e)) = (find(u), find(e)) {
            let check = check_exponential_lower(u, e);
            println!("cross-graph check:\n{}", render_checks(&[check]));
        }
    }

    if any_critical_miss {
        eprintln!("one or more critical paper-shape checks failed");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
