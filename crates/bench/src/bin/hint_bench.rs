//! HINT vs the paper variants: the 1-D stabbing microbench, the hybrid
//! router's multi-dimensional overhead, and the per-dimension-intersection
//! crossover sweep. Results land in `results/BENCH_hint.json` (same
//! `hardware_note` convention as `results/BENCH_sharded.json`).
//!
//! Three measurements:
//!
//! 1. **1-D stab**: HINT's bottom-level stabbing is nearly comparison-free,
//!    so it should beat every paper variant by a wide margin on pure
//!    stabbing workloads. `--check` asserts ≥ 2× over the *best* variant.
//! 2. **Router overhead**: on genuinely 2-D windows the [`HybridIndex`]
//!    routes to its SR-Tree; the routing test must cost ≈ nothing.
//!    `--check` asserts ≤ 5% overhead vs querying the SR-Tree directly.
//! 3. **Crossover**: HINT answers a D-dimensional window by intersecting
//!    per-dimension sorted candidate sets, so its cost tracks the widest
//!    dimension's candidate count. The sweep holds the query degenerate in
//!    y (a slab, the shape the router sends to HINT) and widens the x
//!    extent from a pure stab outward, recording where the SR-Tree takes
//!    over — the boundary behind the router's shape rule.
//!
//! Usage:
//!   hint_bench [--records N] [--stabs N] [--rounds N] [--out FILE] [--check]

use segidx_core::{
    HintIndex, HybridIndex, IntervalIndex, RTree, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segidx_geom::{Point, Rect};
use segidx_workloads::{DataDistribution, DOMAIN_MAX};
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Args {
    records: usize,
    stabs: usize,
    rounds: usize,
    out: PathBuf,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    // 500k intervals approaches the scale of the HINT paper's real
    // datasets (BOOKS: 2.3M); at toy sizes the comparison trees are so
    // shallow that fixed per-query costs mask the hierarchy's advantage.
    let mut args = Args {
        records: 500_000,
        stabs: 2_000,
        rounds: 7,
        out: PathBuf::from("results/BENCH_hint.json"),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--records" => {
                args.records = value("--records")?.parse().map_err(|e| format!("{e}"))?
            }
            "--stabs" => args.stabs = value("--stabs")?.parse().map_err(|e| format!("{e}"))?,
            "--rounds" => args.rounds = value("--rounds")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = true,
            "--help" | "-h" => {
                return Err("usage: hint_bench [--records N] [--stabs N] [--rounds N] \
                     [--out FILE] [--check]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic splitmix64 stream (no external RNG deps).
struct Rng(u64);
impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// 1-D interval data in the spirit of the HINT paper's real workloads
/// (BOOKS/TAXIS): overwhelmingly short intervals with a sparse long tail,
/// uniform placement over `[0, DOMAIN_MAX)`. Stab results stay small
/// (≈ a dozen ids), so the measurement compares index traversal cost
/// rather than result materialisation, which every engine pays alike.
fn intervals_1d(n: usize, seed: u64) -> Vec<(Rect<1>, segidx_core::RecordId)> {
    let mut rng = Rng(seed);
    (0..n as u64)
        .map(|i| {
            let x = rng.next_f64() * DOMAIN_MAX;
            let len = if rng.next_u64() & 63 == 0 {
                DOMAIN_MAX * 0.005
            } else {
                DOMAIN_MAX * 0.000_05
            };
            (Rect::new([x], [x + len]), segidx_core::RecordId(i))
        })
        .collect()
}

fn stab_points_1d(n: usize, seed: u64) -> Vec<Point<1>> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| Point::new([rng.next_f64() * DOMAIN_MAX]))
        .collect()
}

/// Per-round wall times for two stab paths with their rounds interleaved
/// (a, b, a, b, ...), so slow-clock stretches — frequency scaling, noisy
/// neighbours — hit both sides equally instead of biasing whichever block
/// ran second. Callers compare the sides through per-round *ratios*
/// (adjacent rounds see near-identical machine conditions, so the noise
/// cancels) and report latencies as per-side medians.
fn time_stabs_rounds<const D: usize>(
    a: &dyn IntervalIndex<D>,
    b: &dyn IntervalIndex<D>,
    points: &[Point<D>],
    rounds: usize,
) -> (Vec<u64>, Vec<u64>) {
    let (mut rounds_a, mut rounds_b) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        for (index, out) in [(a, &mut rounds_a), (b, &mut rounds_b)] {
            let start = Instant::now();
            let mut found = 0usize;
            for p in points {
                found += index.stab(p).len();
            }
            black_box(found);
            out.push(start.elapsed().as_nanos() as u64);
        }
    }
    (rounds_a, rounds_b)
}

/// Median of the per-round ratios `b_i / a_i` — the noise-cancelling
/// comparison statistic for interleaved round times.
fn median_ratio(a: &[u64], b: &[u64]) -> f64 {
    let mut ratios: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&a, &b)| b as f64 / a as f64)
        .collect();
    ratios.sort_unstable_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Interleaved median-of-`rounds` for two search closures (see
/// [`time_stabs_rounds`] for why interleaving and the median matter).
fn time_searches_pair<const D: usize>(
    a: impl Fn(&Rect<D>) -> usize,
    b: impl Fn(&Rect<D>) -> usize,
    queries: &[Rect<D>],
    rounds: usize,
) -> (u64, u64) {
    let (mut rounds_a, mut rounds_b) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        for (search, out) in [
            (&a as &dyn Fn(&Rect<D>) -> usize, &mut rounds_a),
            (&b as &dyn Fn(&Rect<D>) -> usize, &mut rounds_b),
        ] {
            let start = Instant::now();
            let mut found = 0usize;
            for q in queries {
                found += search(q);
            }
            black_box(found);
            out.push(start.elapsed().as_nanos() as u64);
        }
    }
    (median(&mut rounds_a), median(&mut rounds_b))
}

/// Builds each 1-D paper variant over `records`.
fn paper_variants_1d(
    records: &[(Rect<1>, segidx_core::RecordId)],
) -> Vec<(&'static str, Box<dyn IntervalIndex<1>>)> {
    let n = records.len();
    let domain = Rect::new([0.0], [DOMAIN_MAX * 1.05]);
    let buffer = (n / 10).max(1);
    let mut out: Vec<(&'static str, Box<dyn IntervalIndex<1>>)> = vec![
        ("R-Tree", Box::new(RTree::<1>::new())),
        ("SR-Tree", Box::new(SRTree::<1>::new())),
        (
            "Skeleton R-Tree",
            Box::new(SkeletonRTree::<1>::with_prediction(domain, n, buffer)),
        ),
        (
            "Skeleton SR-Tree",
            Box::new(SkeletonSRTree::<1>::with_prediction(domain, n, buffer)),
        ),
    ];
    for (_, index) in &mut out {
        for (r, id) in records {
            index.insert(*r, *id);
        }
    }
    out
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(mut z: i64) -> (i64, u32, u32) {
    z += 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64 / 86_400)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- 1. 1-D stabbing microbench -----------------------------------
    let records_1d = intervals_1d(args.records, 7);
    let points = stab_points_1d(args.stabs, 11);
    let mut hint_1d = HintIndex::<1>::new();
    hint_1d.bulk_load(records_1d.clone());
    println!(
        "1-D stab over {} intervals, {} probes:",
        args.records, args.stabs
    );
    // Each variant's rounds interleave with fresh HINT rounds, and each
    // pairing is summarized by its median per-round ratio (adjacent
    // rounds see near-identical machine conditions, so noise cancels in
    // the ratio). HINT's reported latency is the median over all its
    // rounds.
    let mut hint_rounds: Vec<u64> = Vec::new();
    let mut variant_stabs: Vec<(&'static str, u64, f64)> = Vec::new();
    for (name, index) in paper_variants_1d(&records_1d) {
        let (h, mut v) = time_stabs_rounds(&hint_1d, index.as_ref(), &points, args.rounds);
        let ratio = median_ratio(&h, &v);
        let nanos = median(&mut v);
        println!(
            "  {:<18} {:>10.0} ns/op  ({:.2}x HINT)",
            name,
            nanos as f64 / args.stabs as f64,
            ratio
        );
        variant_stabs.push((name, nanos, ratio));
        hint_rounds.extend(h);
    }
    let hint_stab = median(&mut hint_rounds);
    println!(
        "  {:<18} {:>10.0} ns/op",
        "HINT",
        hint_stab as f64 / args.stabs as f64
    );
    let best_variant = variant_stabs
        .iter()
        .min_by(|x, y| x.2.total_cmp(&y.2))
        .copied()
        .expect("four variants timed");
    let stab_speedup = best_variant.2;
    println!(
        "  speedup vs best variant ({}): {:.2}x",
        best_variant.0, stab_speedup
    );

    // ---- 2. Router overhead on genuinely 2-D windows ------------------
    // The routed path and the direct path must hit the *same* tree, so the
    // comparison isolates pure routing cost (shape test + counter) rather
    // than differences in tree construction.
    let dataset = DataDistribution::I3.generate(args.records.min(50_000), 7);
    let mut hybrid = HybridIndex::<2>::new();
    hybrid.bulk_load(dataset.records.clone());
    let mut rng = Rng(23);
    let windows: Vec<Rect<2>> = (0..500)
        .map(|_| {
            let x = rng.next_f64() * DOMAIN_MAX * 0.9;
            let y = rng.next_f64() * DOMAIN_MAX * 0.9;
            let w = DOMAIN_MAX * (0.002 + rng.next_f64() * 0.05);
            let h = DOMAIN_MAX * (0.002 + rng.next_f64() * 0.05);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect();
    let (tree_nanos, hybrid_nanos) = time_searches_pair(
        |q| hybrid.tree().search(q).len(),
        |q| hybrid.search(q).len(),
        &windows,
        args.rounds,
    );
    let overhead = hybrid_nanos as f64 / tree_nanos as f64 - 1.0;
    println!(
        "2-D windows: SR-Tree {:.0} ns/op, routed {:.0} ns/op, overhead {:+.1}%",
        tree_nanos as f64 / windows.len() as f64,
        hybrid_nanos as f64 / windows.len() as f64,
        overhead * 100.0
    );
    let (to_hint, to_tree) = hybrid.routed_counts();
    assert!(
        to_tree > to_hint,
        "genuinely 2-D windows must route to the tree ({to_hint} vs {to_tree})"
    );

    // ---- 3. Crossover sweep: widen the one extended dimension ---------
    // Slabs (degenerate in y) are the shape the router sends to HINT; the
    // sweep widens their x extent from a pure 2-D stab outward against the
    // same bulk-loaded SR-Tree the hybrid holds.
    let hint_2d = hybrid.hint();
    let fractions = [0.0f64, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05];
    let mut cells = Vec::new();
    let mut crossover: Option<f64> = None;
    println!("crossover sweep (y degenerate, x-extent widening):");
    for &f in &fractions {
        let mut rng = Rng(31);
        let queries: Vec<Rect<2>> = (0..300)
            .map(|_| {
                let x = rng.next_f64() * DOMAIN_MAX * (1.0 - f).max(0.1);
                let y = rng.next_f64() * DOMAIN_MAX * 0.9;
                Rect::new([x, y], [x + DOMAIN_MAX * f, y])
            })
            .collect();
        let (hint_nanos, tree_nanos) = time_searches_pair(
            |q| hint_2d.search(q).len(),
            |q| hybrid.tree().search(q).len(),
            &queries,
            args.rounds,
        );
        let ratio = hint_nanos as f64 / tree_nanos as f64;
        if crossover.is_none() && ratio > 1.0 {
            crossover = Some(f);
        }
        println!(
            "  y-extent {:>5.1}%: HINT {:>9.0} ns/op, SR-Tree {:>9.0} ns/op, ratio {:.2}",
            f * 100.0,
            hint_nanos as f64 / queries.len() as f64,
            tree_nanos as f64 / queries.len() as f64,
            ratio
        );
        cells.push((
            f,
            hint_nanos / queries.len() as u64,
            tree_nanos / queries.len() as u64,
            ratio,
        ));
    }

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"HINT hierarchical interval engine vs the paper's four variants\",\n",
    );
    json.push_str(&format!("  \"date\": \"{}\",\n", today()));
    json.push_str(
        "  \"method\": \"crates/bench/src/bin/hint_bench.rs; (1) 1-D stabbing over a \
         long-tail interval set, HINT vs all four paper variants, interleaved rounds scored by the \
         median per-round ratio; \
         (2) routed 2-D windows through HybridIndex vs the same bulk-loaded SR-Tree \
         directly; (3) slab queries (degenerate y) widening the x extent until \
         per-dimension intersection loses to one tree traversal\",\n",
    );
    json.push_str(&format!(
        "  \"hardware_note\": \"container run (available_parallelism = {cores}); \
         single-threaded microbenches, {} interleaved rounds (median of paired \
         per-round ratios) - relative ratios are the \
         signal, absolute latencies vary with the runner\",\n",
        args.rounds
    ));
    json.push_str(&format!("  \"n_records\": {},\n", args.records));
    json.push_str(&format!("  \"stab_probes\": {},\n", args.stabs));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"stab_1d\": {\n");
    json.push_str(&format!(
        "    \"hint_nanos_per_op\": {},\n",
        hint_stab / args.stabs as u64
    ));
    json.push_str("    \"variants\": [\n");
    for (i, (name, nanos, ratio)) in variant_stabs.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"variant\": \"{name}\", \"nanos_per_op\": {}, \"ratio_vs_hint\": {ratio:.2} }}{}\n",
            nanos / args.stabs as u64,
            if i + 1 == variant_stabs.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"best_variant\": \"{}\",\n    \"speedup_vs_best_variant\": {:.2}\n  }},\n",
        best_variant.0, stab_speedup
    ));
    json.push_str("  \"router_2d_windows\": {\n");
    json.push_str(&format!(
        "    \"srtree_nanos_per_op\": {},\n    \"hybrid_nanos_per_op\": {},\n    \
         \"overhead_fraction\": {:.4}\n  }},\n",
        tree_nanos / windows.len() as u64,
        hybrid_nanos / windows.len() as u64,
        overhead
    ));
    json.push_str("  \"crossover\": {\n    \"y_extent_fraction\": 0.0,\n    \"cells\": [\n");
    for (i, (f, hint, tree, ratio)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"x_extent_fraction\": {f}, \"hint_nanos_per_op\": {hint}, \
             \"srtree_nanos_per_op\": {tree}, \"hint_over_srtree\": {ratio:.2} }}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    match crossover {
        Some(f) => json.push_str(&format!("    \"crossover_x_extent_fraction\": {f}\n  }}\n")),
        None => json.push_str("    \"crossover_x_extent_fraction\": null\n  }\n"),
    }
    json.push_str("}\n");
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&args.out, json).expect("write results");
    println!("hint_bench: wrote {}", args.out.display());

    // ---- Acceptance gates ----------------------------------------------
    if args.check {
        let mut problems = Vec::new();
        if stab_speedup < 2.0 {
            problems.push(format!(
                "1-D stab speedup {:.2}x vs {} is below the 2x gate",
                stab_speedup, best_variant.0
            ));
        }
        if overhead > 0.05 {
            problems.push(format!(
                "router overhead {:.1}% on 2-D windows exceeds the 5% gate",
                overhead * 100.0
            ));
        }
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("hint_bench: CHECK FAILED: {p}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "hint_bench: checks passed (stab {:.2}x >= 2x, router overhead {:+.1}% <= 5%)",
            stab_speedup,
            overhead * 100.0
        );
    }
    ExitCode::SUCCESS
}
