//! Qualitative shape checks: does a reproduced graph show the relationships
//! the paper reports?
//!
//! Absolute node counts depend on hardware-independent parameters we share
//! with the paper (node sizes, query areas) but also on random streams we
//! cannot reproduce, so the reproduction target is the *shape*: who wins,
//! roughly by how much, and where the crossovers fall (§5.1).

use crate::experiment::{Graph, Variant};
use crate::runner::{GraphResult, Series};

/// One qualitative claim from the paper checked against a result.
#[derive(Clone, Debug)]
pub struct ShapeCheck {
    /// Short identifier.
    pub name: &'static str,
    /// The claim, as the paper states it.
    pub claim: &'static str,
    /// Whether the reproduced data satisfies it.
    pub passed: bool,
    /// Whether the claim is load-bearing (tests assert these) or a softer
    /// tendency (reported only).
    pub critical: bool,
    /// The measured numbers behind the verdict.
    pub detail: String,
}

fn vqar(p: &crate::runner::SweepPoint) -> bool {
    p.log10_qar < 0.0
}

fn series(r: &GraphResult, v: Variant) -> &Series {
    r.series_for(v)
}

/// Checks a reproduced graph against the paper's §5.1 claims for it.
pub fn check_paper_shape(result: &GraphResult) -> Vec<ShapeCheck> {
    let graph = result.graph();
    let r = series(result, Variant::RTree);
    let sr = series(result, Variant::SRTree);
    let kr = series(result, Variant::SkeletonRTree);
    let ksr = series(result, Variant::SkeletonSRTree);
    let mut checks = Vec::new();

    // Universal claim: Skeleton indexes greatly outperform non-Skeleton
    // indexes in the vertical-QAR range. Critical for the six published
    // graphs; the paper never published results for the exponential-
    // centroid extras (G7/G8), so there the check is informational.
    {
        let skel = (kr.mean_where(vqar) + ksr.mean_where(vqar)) / 2.0;
        let non = (r.mean_where(vqar) + sr.mean_where(vqar)) / 2.0;
        checks.push(ShapeCheck {
            name: "skeleton-beats-non-skeleton-vqar",
            claim: "non-Skeleton indexes performed much worse than Skeleton \
                    indexes in the VQAR range",
            passed: skel < non,
            critical: Graph::PAPER.contains(&graph),
            detail: format!("VQAR mean: skeleton {skel:.1}, non-skeleton {non:.1}"),
        });
    }

    // Short-interval graphs: R ≈ SR (too few spanning records to matter).
    if matches!(graph, Graph::G1 | Graph::G2 | Graph::G5 | Graph::G7) {
        let rel = mean_rel_diff(r, sr);
        checks.push(ShapeCheck {
            name: "r-equals-sr-short-intervals",
            claim: "both non-Skeleton indexes had identical performance \
                    (intervals too short for spanning records)",
            passed: rel < 0.05,
            critical: true,
            detail: format!("mean |R−SR|/R over the sweep = {:.1}%", rel * 100.0),
        });
        let rel_skel = mean_rel_diff(kr, ksr);
        checks.push(ShapeCheck {
            name: "skel-r-equals-skel-sr-short-intervals",
            claim: "the Skeleton indexes had nearly identical performance",
            passed: rel_skel < 0.15,
            critical: false,
            detail: format!(
                "mean |SkelR−SkelSR|/SkelR over the sweep = {:.1}%",
                rel_skel * 100.0
            ),
        });
    }

    // Exponential-length graphs: the Skeleton SR-Tree substantially
    // outperforms the Skeleton R-Tree in the VQAR range.
    if matches!(graph, Graph::G3 | Graph::G4 | Graph::G6 | Graph::G8) {
        let a = ksr.mean_where(vqar);
        let b = kr.mean_where(vqar);
        checks.push(ShapeCheck {
            name: "skel-sr-beats-skel-r-vqar",
            claim: "the Skeleton SR-Tree substantially outperformed the \
                    Skeleton R-Tree in the VQAR range (many spanning segments)",
            passed: a < b,
            critical: true,
            detail: format!("VQAR mean: Skeleton SR {a:.1}, Skeleton R {b:.1}"),
        });
        if matches!(graph, Graph::G3 | Graph::G4) {
            let rel = mean_rel_diff(r, sr);
            checks.push(ShapeCheck {
                name: "non-skel-r-vs-sr-slight",
                claim: "the difference between SR-Tree and R-Tree was very \
                        slight in the non-Skeleton case (mostly horizontal \
                        nodes allow few spanning segments)",
                passed: rel < 0.25,
                critical: false,
                detail: format!("mean |R−SR|/R = {:.1}%", rel * 100.0),
            });
        }
    }

    // Graph 6: the Skeleton SR-Tree is superior to all other three indexes.
    if graph == Graph::G6 {
        let all = [
            ("R-Tree", r.mean_where(|_| true)),
            ("SR-Tree", sr.mean_where(|_| true)),
            ("Skeleton R-Tree", kr.mean_where(|_| true)),
        ];
        let best = ksr.mean_where(|_| true);
        let passed = all.iter().all(|(_, m)| best < *m);
        checks.push(ShapeCheck {
            name: "skel-sr-best-overall-g6",
            claim: "Graph 6 clearly shows the superiority of the Skeleton \
                    SR-Tree over all of the other three indexes",
            passed,
            critical: true,
            detail: format!(
                "overall means: Skeleton SR {best:.1} vs {}",
                all.map(|(n, m)| format!("{n} {m:.1}")).join(", ")
            ),
        });
    }

    // Graphs 2 and 4: a crossover in the very high HQAR range where the
    // non-Skeleton indexes gain a slight advantage.
    if matches!(graph, Graph::G2 | Graph::G4) {
        let last = |s: &Series| s.points.last().unwrap().avg_nodes;
        let non = last(r).min(last(sr));
        let skel = last(kr).min(last(ksr));
        checks.push(ShapeCheck {
            name: "crossover-high-hqar",
            claim: "in the HQAR range above 1,000 the non-Skeleton indexes \
                    had a slight advantage (exponential Y concentrates their \
                    horizontal nodes)",
            passed: non <= skel * 1.25,
            critical: false,
            detail: format!("QAR=10000: non-skeleton best {non:.1}, skeleton best {skel:.1}"),
        });
    }

    checks
}

/// Cross-graph claim: experiments with exponentially distributed Y values
/// always had lower average node accesses than the uniform ones (§5.1).
pub fn check_exponential_lower(uniform: &GraphResult, exponential: &GraphResult) -> ShapeCheck {
    let mean = |r: &GraphResult| {
        r.series.iter().map(|s| s.mean_where(|_| true)).sum::<f64>() / r.series.len() as f64
    };
    let u = mean(uniform);
    let e = mean(exponential);
    ShapeCheck {
        name: "exponential-y-lower-than-uniform",
        claim: "experiments involving exponentially distributed data always \
                had lower average node accesses than uniformly distributed \
                ones",
        passed: e < u,
        critical: false,
        detail: format!(
            "overall mean: graph {} = {u:.1}, graph {} = {e:.1}",
            uniform.graph().number(),
            exponential.graph().number()
        ),
    }
}

/// Mean relative difference between two series over the whole sweep.
fn mean_rel_diff(a: &Series, b: &Series) -> f64 {
    let diffs: Vec<f64> = a
        .points
        .iter()
        .zip(b.points.iter())
        .map(|(pa, pb)| (pa.avg_nodes - pb.avg_nodes).abs() / pa.avg_nodes.max(1.0))
        .collect();
    diffs.iter().sum::<f64>() / diffs.len() as f64
}

/// Renders checks as a human-readable block.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "  [{}] {}{} — {}\n        {}\n",
            if c.passed { "PASS" } else { "MISS" },
            c.name,
            if c.critical { "" } else { " (soft)" },
            c.claim,
            c.detail
        ));
    }
    out
}
