//! Rendering results: paper-style tables and CSV files.

use crate::runner::GraphResult;
use std::io::Write;
use std::path::Path;

/// Renders a graph's series as the table the paper plots: one row per QAR,
/// one column per index variant, values = average nodes accessed per search.
pub fn render_table(result: &GraphResult) -> String {
    let exp = &result.experiment;
    let mut out = String::new();
    out.push_str(&format!(
        "Graph {}: {} — {} tuples ({} queries per QAR)\n",
        exp.graph.number(),
        exp.graph.caption(),
        exp.tuples,
        exp.queries_per_qar
    ));
    out.push_str(
        "X axis = horizontal/vertical query aspect ratio (log base 10)\n\
         Y axis = average number of nodes accessed per search\n\n",
    );
    out.push_str(&format!("{:>10}", "log10(QAR)"));
    for s in &result.series {
        out.push_str(&format!("  {:>17}", s.variant.name()));
    }
    out.push('\n');
    let n_points = result.series[0].points.len();
    for i in 0..n_points {
        out.push_str(&format!("{:>10.1}", result.series[0].points[i].log10_qar));
        for s in &result.series {
            out.push_str(&format!("  {:>17.2}", s.points[i].avg_nodes));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&format!(
        "{:>18}  {:>8}  {:>6}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9}\n",
        "variant", "nodes", "height", "entries", "spanning", "cuts", "coalesces", "build ms"
    ));
    for s in &result.series {
        out.push_str(&format!(
            "{:>18}  {:>8}  {:>6}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9}\n",
            s.variant.name(),
            s.build.node_count,
            s.build.height,
            s.build.entry_count,
            s.build.spanning_stores,
            s.build.cuts,
            s.build.coalesces,
            s.build.build_ms
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:>18}  {:>24}  {:>24}  {:>8}\n",
        "variant", "search p50/p95/p99 (us)", "insert p50/p95/p99 (us)", "bp hit"
    ));
    for s in &result.series {
        out.push_str(&format!(
            "{:>18}  {:>24}  {:>24}  {:>8}\n",
            s.variant.name(),
            percentile_cell(&s.search_latency),
            percentile_cell(&s.insert_latency),
            hit_rate_cell(s)
        ));
    }
    out
}

/// `p50/p95/p99` in microseconds (one decimal), or `-` when untimed.
fn percentile_cell(h: &segidx_obs::HistogramSnapshot) -> String {
    match (h.p50(), h.p95(), h.p99()) {
        (Some(p50), Some(p95), Some(p99)) => {
            let us = |n: u64| n as f64 / 1_000.0;
            format!("{:.1}/{:.1}/{:.1}", us(p50), us(p95), us(p99))
        }
        _ => "-".to_string(),
    }
}

/// Buffer-pool hit rate as a percentage, or `-` for purely in-memory runs.
fn hit_rate_cell(s: &crate::runner::Series) -> String {
    match s.io.hit_rate() {
        Some(rate) => format!("{:.1}%", rate * 100.0),
        None => "-".to_string(),
    }
}

/// Writes a graph's series as CSV:
/// `qar,log10_qar,<variant columns...>`.
pub fn write_csv(result: &GraphResult, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "qar,log10_qar")?;
    for s in &result.series {
        write!(f, ",{}", s.variant.name().replace(' ', "_"))?;
    }
    writeln!(f)?;
    let n_points = result.series[0].points.len();
    for i in 0..n_points {
        let p0 = result.series[0].points[i];
        write!(f, "{},{}", p0.qar, p0.log10_qar)?;
        for s in &result.series {
            write!(f, ",{}", s.points[i].avg_nodes)?;
        }
        writeln!(f)?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, Graph, Variant};
    use crate::runner::{BuildInfo, GraphResult, Series, SweepPoint};

    fn tiny_result() -> GraphResult {
        let point = |v: f64| SweepPoint {
            qar: 1.0,
            log10_qar: 0.0,
            avg_nodes: v,
        };
        GraphResult {
            experiment: Experiment::quick(Graph::G1),
            series: Variant::ALL
                .iter()
                .enumerate()
                .map(|(i, &variant)| {
                    let mut search_latency = segidx_obs::HistogramSnapshot::default();
                    search_latency.counts[11] = 3; // three ~1.3 us searches
                    search_latency.count = 3;
                    search_latency.sum = 4_000;
                    search_latency.max = 1_500;
                    Series {
                        variant,
                        points: vec![point(i as f64 + 1.5)],
                        build: BuildInfo::default(),
                        stats: segidx_core::StatsSnapshot::default(),
                        search_latency,
                        insert_latency: segidx_obs::HistogramSnapshot::default(),
                        io: segidx_storage::IoStatsSnapshot::default(),
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn table_contains_all_variants_and_values() {
        let table = render_table(&tiny_result());
        for v in Variant::ALL {
            assert!(table.contains(v.name()), "missing {}", v.name());
        }
        assert!(table.contains("1.50"));
        assert!(table.contains("4.50"));
        assert!(table.contains("Graph 1"));
        assert!(table.contains("search p50/p95/p99"));
        // The seeded histogram renders percentiles; untimed inserts render
        // `-`, as does the in-memory buffer-pool column.
        assert!(table.contains("/"));
        assert!(table.contains("-"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join(format!("segidx-csv-{}", std::process::id()));
        let path = dir.join("g1.csv");
        write_csv(&tiny_result(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "qar,log10_qar,R-Tree,SR-Tree,Skeleton_R-Tree,Skeleton_SR-Tree"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("1,0,1.5,2.5,3.5,4.5"));
        assert_eq!(lines.count(), 0);
    }
}
