//! Deterministic interleaving stress harness for the concurrent index
//! service (`segidx-concurrent`).
//!
//! Each seed fully determines a run: the initial load, the mutation
//! stream, the probe queries, and the writer's batching parameters all
//! come from [`SplitMix64`] streams keyed off
//! the seed. Thread scheduling is the only nondeterminism left — which is
//! exactly what the harness stresses — and correctness never depends on
//! it, because validation is *post hoc*:
//!
//! 1. readers continuously pin snapshots and record
//!    `(epoch, probe, result-set)` observations plus per-reader epoch
//!    monotonicity;
//! 2. every submitted operation keeps its `CommitTicket`, so after the run
//!    each operation maps to the epoch whose group commit published it;
//! 3. since the single writer commits operations in submission order, the
//!    tree at epoch *E* must equal the serial replay of the operation
//!    prefix committed at or before *E* — every observation is checked
//!    against a flat-list serial model of that prefix (differential
//!    testing, same model as [`crate::crash`]).
//!
//! A failure therefore means a real snapshot-isolation violation (a
//! reader saw a half-applied batch, a stale epoch after a newer one, or a
//! reclaimed snapshot), not a flaky schedule. All four paper variants are
//! exercised, since each has distinct node layouts and split/coalesce
//! machinery behind the same `Tree` engine — plus the HINT engine, which
//! runs the same service through a completely different copy-on-write
//! structure (flat partition arrays instead of a paged tree).

use crate::crash::SplitMix64;
use segidx_concurrent::{
    CommitTicket, ConcurrentIndex, IndexOp, ShardedIndex, SnapshotEngine, SubmitError, ZOrderRouter,
};
use segidx_core::tree::Tree;
use segidx_core::{
    HintIndex, IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segidx_geom::Rect;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The four paper variants the harness drives.
pub const VARIANTS: [&str; 4] = ["R-Tree", "SR-Tree", "Skeleton R-Tree", "Skeleton SR-Tree"];

/// Every engine the harness drives: the paper variants plus HINT.
pub const ENGINES: [&str; 5] = [
    "R-Tree",
    "SR-Tree",
    "Skeleton R-Tree",
    "Skeleton SR-Tree",
    "HINT",
];

/// Shape of one stress run (per seed, per variant).
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Records loaded before the index starts serving.
    pub initial: usize,
    /// Mutations submitted while readers run.
    pub ops: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Probability a mutation deletes a live record instead of inserting.
    pub delete_fraction: f64,
    /// Probe rectangles per run.
    pub probes: usize,
    /// Cap on recorded observations per reader (bounds memory; readers
    /// keep running past the cap, just without recording).
    pub max_observations: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        Self {
            initial: 400,
            ops: 700,
            readers: 3,
            delete_fraction: 0.3,
            probes: 12,
            max_observations: 2_000,
        }
    }
}

/// One detected violation.
#[derive(Debug, Clone)]
pub struct StressFailure {
    /// The run's seed.
    pub seed: u64,
    /// Which paper variant the index was built as.
    pub variant: &'static str,
    /// What went wrong.
    pub detail: String,
}

/// Outcome of one seed across every engine.
#[derive(Debug, Default)]
pub struct SeedOutcome {
    /// Reader observations validated against the serial model.
    pub observations: u64,
    /// Snapshot epochs published across the four runs.
    pub epochs: u64,
    /// Violations; empty means the seed passed.
    pub failures: Vec<StressFailure>,
}

fn gen_rect(rng: &mut SplitMix64) -> Rect<2> {
    let x = rng.next_f64() * 5_000.0;
    let y = rng.next_f64() * 5_000.0;
    // Mostly short intervals plus occasional long spanners, so segment
    // variants exercise cutting/spanning under concurrency.
    let len = if rng.next_u64() & 7 == 0 {
        1_500.0
    } else {
        40.0
    };
    Rect::new([x, y], [x + len, y + rng.next_f64() * 40.0])
}

/// The deterministic initial load for `seed`.
pub fn initial_records(seed: u64, count: usize) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = SplitMix64::new(seed ^ 0x1217_EA5E);
    (0..count as u64)
        .map(|i| (gen_rect(&mut rng), RecordId(i)))
        .collect()
}

/// The deterministic mutation stream for `seed`: inserts of fresh records
/// and deletes of currently-live ones (including the initial load).
pub fn mutation_stream(
    seed: u64,
    cfg: &StressConfig,
    initial: &[(Rect<2>, RecordId)],
) -> Vec<IndexOp<2>> {
    let mut rng = SplitMix64::new(seed ^ 0x0D15_EA5E_0BAD_F00D);
    let mut alive: Vec<(Rect<2>, RecordId)> = initial.to_vec();
    let mut next_record = initial.len() as u64;
    let mut ops = Vec::with_capacity(cfg.ops);
    for _ in 0..cfg.ops {
        let delete = !alive.is_empty() && rng.next_f64() < cfg.delete_fraction;
        if delete {
            let victim = alive.swap_remove((rng.next_u64() as usize) % alive.len());
            ops.push(IndexOp::Delete {
                rect: victim.0,
                record: victim.1,
            });
        } else {
            let rect = gen_rect(&mut rng);
            let record = RecordId(next_record);
            next_record += 1;
            alive.push((rect, record));
            ops.push(IndexOp::Insert { rect, record });
        }
    }
    ops
}

/// Probe rectangles for `seed` (same domain as the record generator).
pub fn probe_rects(seed: u64, count: usize) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed ^ 0x9B0E_5EED);
    (0..count)
        .map(|_| {
            let x = rng.next_f64() * 5_000.0;
            let y = rng.next_f64() * 5_000.0;
            let w = 50.0 + rng.next_f64() * 1_200.0;
            let h = 50.0 + rng.next_f64() * 1_200.0;
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

/// Builds one paper variant over `records` and unwraps it to a bare tree.
pub fn build_variant(variant: &str, records: &[(Rect<2>, RecordId)]) -> Tree<2> {
    let n = records.len().max(1);
    let domain = Rect::new([0.0, 0.0], [7_000.0, 7_000.0]);
    match variant {
        "R-Tree" => {
            let mut t = RTree::<2>::new();
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "SR-Tree" => {
            let mut t = SRTree::<2>::new();
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "Skeleton R-Tree" => {
            let mut t = SkeletonRTree::<2>::with_prediction(domain, n, n / 10 + 1);
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "Skeleton SR-Tree" => {
            let mut t = SkeletonSRTree::<2>::with_prediction(domain, n, n / 10 + 1);
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        other => panic!("unknown variant {other}"),
    }
}

/// One reader observation: at pinned epoch `epoch`, probe `probe` returned
/// `results`.
struct Observation {
    epoch: u64,
    probe: usize,
    results: BTreeSet<RecordId>,
}

/// Runs one seed against one engine; returns observations validated plus
/// any failures. `variant` dispatches between the four paper variants
/// (each unwrapped to a bare [`Tree`]) and `"HINT"`.
fn stress_variant(
    seed: u64,
    variant: &'static str,
    cfg: &StressConfig,
) -> (u64, u64, Vec<StressFailure>) {
    if variant == "HINT" {
        stress_engine(seed, variant, cfg, |initial| {
            let mut h = HintIndex::<2>::new();
            h.bulk_load(initial.to_vec());
            h
        })
    } else {
        stress_engine(seed, variant, cfg, |initial| {
            build_variant(variant, initial)
        })
    }
}

/// The engine-generic body of [`stress_variant`]: the same service, the
/// same streams, the same post-hoc differential validation, for any
/// [`SnapshotEngine`].
fn stress_engine<E: SnapshotEngine<2>>(
    seed: u64,
    variant: &'static str,
    cfg: &StressConfig,
    build: impl FnOnce(&[(Rect<2>, RecordId)]) -> E,
) -> (u64, u64, Vec<StressFailure>) {
    let mut failures = Vec::new();
    let fail = |detail: String| StressFailure {
        seed,
        variant,
        detail,
    };

    let initial = initial_records(seed, cfg.initial);
    let ops = mutation_stream(seed, cfg, &initial);
    let probes = probe_rects(seed, cfg.probes);
    let tree = build(&initial);

    // Batching parameters vary with the seed so different seeds exercise
    // different commit groupings.
    let max_batch = 8 + (seed as usize % 5) * 24;
    let index = ConcurrentIndex::builder(tree)
        .queue_capacity(256)
        .max_batch(max_batch)
        .start()
        .expect("memory-only start cannot fail");

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader_id in 0..cfg.readers {
        let handle = index.handle();
        let stop = Arc::clone(&stop);
        let probes = probes.clone();
        let max_obs = cfg.max_observations;
        readers.push(std::thread::spawn(move || {
            let mut observations: Vec<Observation> = Vec::new();
            let mut monotonicity_errors: Vec<String> = Vec::new();
            let mut last_epoch = 0u64;
            let mut it = reader_id; // stagger probe choice across readers
            while !stop.load(Ordering::Relaxed) {
                let snap = handle.snapshot();
                let epoch = snap.epoch();
                if epoch < last_epoch {
                    monotonicity_errors.push(format!(
                        "reader {reader_id}: epoch went backwards {last_epoch} -> {epoch}"
                    ));
                    break;
                }
                last_epoch = epoch;
                let probe = it % probes.len();
                it += 1;
                let results: BTreeSet<RecordId> = snap.search(&probes[probe]).into_iter().collect();
                // Periodically run full structural validation on the
                // pinned snapshot — a torn snapshot fails loudly here.
                if it % 97 == 0 {
                    let errs = snap.check_invariants();
                    if !errs.is_empty() {
                        monotonicity_errors.push(format!(
                            "reader {reader_id}: invariants at epoch {epoch}: {errs:?}"
                        ));
                        break;
                    }
                }
                if observations.len() < max_obs {
                    observations.push(Observation {
                        epoch,
                        probe,
                        results,
                    });
                }
            }
            (observations, monotonicity_errors)
        }));
    }

    // Submit the mutation stream (retrying on admission-control rejection)
    // while the readers hammer snapshots.
    let mut tickets: Vec<CommitTicket> = Vec::with_capacity(ops.len());
    for op in &ops {
        loop {
            match index.submit(*op) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(SubmitError::Closed) => panic!("writer died mid-stress"),
            }
        }
    }
    index.flush().expect("memory-only flush cannot fail");
    stop.store(true, Ordering::Relaxed);

    let mut observations: Vec<Observation> = Vec::new();
    for r in readers {
        let (obs, errs) = r.join().expect("reader thread");
        observations.extend(obs);
        failures.extend(errs.into_iter().map(&fail));
    }

    // Map each op to the epoch that committed it; commits happen in
    // submission order, so the epochs must be nondecreasing.
    let mut commit_epochs: Vec<u64> = Vec::with_capacity(tickets.len());
    for (i, t) in tickets.iter().enumerate() {
        match t.try_receipt() {
            Some(Ok(receipt)) => commit_epochs.push(receipt.epoch),
            other => failures.push(fail(format!("op {i}: ticket unresolved/failed: {other:?}"))),
        }
    }
    if commit_epochs.windows(2).any(|w| w[0] > w[1]) {
        failures.push(fail(
            "commit epochs decreased across submission order".into(),
        ));
    }
    let published_epochs = index.epoch();

    // Differential validation: sort observations by epoch and advance a
    // flat-list serial model through the committed prefix as the epoch
    // rises. `alive` is the model of truth — independent of any tree code.
    observations.sort_by_key(|o| o.epoch);
    let mut alive: Vec<(Rect<2>, RecordId)> = initial.clone();
    let mut next_op = 0usize;
    let mut checked = 0u64;
    for obs in &observations {
        while next_op < ops.len() && commit_epochs[next_op] <= obs.epoch {
            match ops[next_op] {
                IndexOp::Insert { rect, record } => alive.push((rect, record)),
                IndexOp::Delete { record, .. } => alive.retain(|(_, r)| *r != record),
            }
            next_op += 1;
        }
        let expect: BTreeSet<RecordId> = alive
            .iter()
            .filter(|(rect, _)| rect.intersects(&probes[obs.probe]))
            .map(|(_, r)| *r)
            .collect();
        if obs.results != expect {
            let missing = expect.difference(&obs.results).count();
            let phantom = obs.results.difference(&expect).count();
            failures.push(fail(format!(
                "epoch {} probe {}: snapshot not prefix-consistent \
                 ({missing} missing, {phantom} phantom of {} expected)",
                obs.epoch,
                obs.probe,
                expect.len()
            )));
            if failures.len() > 8 {
                break; // one broken run floods; keep reports readable
            }
        }
        checked += 1;
    }

    // Final state must equal the full serial model.
    while next_op < ops.len() {
        match ops[next_op] {
            IndexOp::Insert { rect, record } => alive.push((rect, record)),
            IndexOp::Delete { record, .. } => alive.retain(|(_, r)| *r != record),
        }
        next_op += 1;
    }
    let snap = index.snapshot();
    let whole = Rect::new([0.0, 0.0], [7_000.0, 7_000.0]);
    let got: BTreeSet<RecordId> = snap.search(&whole).into_iter().collect();
    let expect: BTreeSet<RecordId> = alive.iter().map(|(_, r)| *r).collect();
    if got != expect {
        failures.push(fail(format!(
            "final snapshot diverged from serial model ({} vs {} records)",
            got.len(),
            expect.len()
        )));
    }
    let errs = snap.check_invariants();
    if !errs.is_empty() {
        failures.push(fail(format!("final snapshot invariants: {errs:?}")));
    }
    drop(snap);
    index.shutdown();
    (checked, published_epochs, failures)
}

/// Runs one seed across every engine (the four paper variants plus HINT).
pub fn stress_seed(seed: u64, cfg: &StressConfig) -> SeedOutcome {
    let mut outcome = SeedOutcome::default();
    for variant in ENGINES {
        let (checked, epochs, failures) = stress_variant(seed, variant, cfg);
        outcome.observations += checked;
        outcome.epochs += epochs;
        outcome.failures.extend(failures);
    }
    outcome
}

/// One reader observation against a pinned cross-shard snapshot: the full
/// per-shard epoch vector, plus one probe's result set.
struct ShardedObservation {
    global_epoch: u64,
    shard_epochs: Vec<u64>,
    probe: usize,
    results: BTreeSet<RecordId>,
}

/// Runs one seed against one variant, sharded `shards` ways. Same streams
/// as [`stress_variant`]; validation replays each shard's committed prefix
/// (per-shard receipts give local commit epochs, the pinned vector gives
/// the cut) — plus the vector-consistency invariant that the per-shard
/// epochs of every observed snapshot sum to its global epoch, which any
/// torn (non-atomic) publication would violate.
fn stress_variant_sharded(
    seed: u64,
    variant: &'static str,
    cfg: &StressConfig,
    shards: usize,
) -> (u64, u64, Vec<StressFailure>) {
    if variant == "HINT" {
        stress_engine_sharded(seed, variant, cfg, shards, |part| {
            let mut h = HintIndex::<2>::new();
            h.bulk_load(part.to_vec());
            h
        })
    } else {
        stress_engine_sharded(seed, variant, cfg, shards, |part| {
            build_variant(variant, part)
        })
    }
}

/// The engine-generic body of [`stress_variant_sharded`].
fn stress_engine_sharded<E: SnapshotEngine<2>>(
    seed: u64,
    variant: &'static str,
    cfg: &StressConfig,
    shards: usize,
    build: impl Fn(&[(Rect<2>, RecordId)]) -> E,
) -> (u64, u64, Vec<StressFailure>) {
    let mut failures = Vec::new();
    let fail = |detail: String| StressFailure {
        seed,
        variant,
        detail,
    };

    let initial = initial_records(seed, cfg.initial);
    let ops = mutation_stream(seed, cfg, &initial);
    let probes = probe_rects(seed, cfg.probes);
    let domain = Rect::new([0.0, 0.0], [7_000.0, 7_000.0]);
    let router = ZOrderRouter::new(domain, shards);
    let trees = router
        .partition(&initial)
        .iter()
        .map(|part| build(part))
        .collect();

    let max_batch = 8 + (seed as usize % 5) * 24;
    let index = ShardedIndex::builder(router, trees)
        .queue_capacity(256)
        .max_batch(max_batch)
        .start()
        .expect("memory-only start cannot fail");

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader_id in 0..cfg.readers {
        let handle = index.handle();
        let stop = Arc::clone(&stop);
        let probes = probes.clone();
        let max_obs = cfg.max_observations;
        readers.push(std::thread::spawn(move || {
            let mut observations: Vec<ShardedObservation> = Vec::new();
            let mut errors: Vec<String> = Vec::new();
            let mut last_epoch = 0u64;
            let mut it = reader_id;
            while !stop.load(Ordering::Relaxed) {
                let snap = handle.snapshot();
                let global_epoch = snap.global_epoch();
                if global_epoch < last_epoch {
                    errors.push(format!(
                        "reader {reader_id}: global epoch went backwards \
                         {last_epoch} -> {global_epoch}"
                    ));
                    break;
                }
                last_epoch = global_epoch;
                let shard_epochs: Vec<u64> = (0..snap.shard_count())
                    .map(|s| snap.shard_epoch(s))
                    .collect();
                // A torn vector — one not produced by a single atomic
                // publication — cannot satisfy this accounting identity.
                if shard_epochs.iter().sum::<u64>() != global_epoch {
                    errors.push(format!(
                        "reader {reader_id}: torn vector at global epoch \
                         {global_epoch}: shard epochs {shard_epochs:?}"
                    ));
                    break;
                }
                let probe = it % probes.len();
                it += 1;
                let results: BTreeSet<RecordId> = snap.search(&probes[probe]).into_iter().collect();
                if it % 97 == 0 {
                    let errs = snap.check_invariants();
                    if !errs.is_empty() {
                        errors.push(format!(
                            "reader {reader_id}: invariants at global epoch \
                             {global_epoch}: {errs:?}"
                        ));
                        break;
                    }
                }
                if observations.len() < max_obs {
                    observations.push(ShardedObservation {
                        global_epoch,
                        shard_epochs,
                        probe,
                        results,
                    });
                }
            }
            (observations, errors)
        }));
    }

    // Submit the stream, recording each op's shard; per-shard receipts
    // are resolved through the bounded `wait_timeout` so a poisoned shard
    // fails the run instead of parking it forever.
    let mut routed: Vec<(usize, CommitTicket)> = Vec::with_capacity(ops.len());
    for op in &ops {
        loop {
            match index.submit(*op) {
                Ok(t) => {
                    routed.push((index.route(op), t));
                    break;
                }
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(SubmitError::Closed) => panic!("a shard writer died mid-stress"),
            }
        }
    }
    index.flush().expect("memory-only flush cannot fail");
    stop.store(true, Ordering::Relaxed);

    let mut observations: Vec<ShardedObservation> = Vec::new();
    for r in readers {
        let (obs, errs) = r.join().expect("reader thread");
        observations.extend(obs);
        failures.extend(errs.into_iter().map(&fail));
    }

    // Group ops by shard in submission order, tagged with their local
    // commit epoch. Per shard the epochs must be nondecreasing.
    let mut per_shard_ops: Vec<Vec<(IndexOp<2>, u64)>> = vec![Vec::new(); shards];
    for (i, ((shard, ticket), op)) in routed.iter().zip(&ops).enumerate() {
        match ticket.wait_timeout(std::time::Duration::from_secs(30)) {
            Some(Ok(receipt)) => per_shard_ops[*shard].push((*op, receipt.epoch)),
            other => failures.push(fail(format!("op {i}: ticket unresolved/failed: {other:?}"))),
        }
    }
    for (shard, shard_ops) in per_shard_ops.iter().enumerate() {
        if shard_ops.windows(2).any(|w| w[0].1 > w[1].1) {
            failures.push(fail(format!(
                "shard {shard}: commit epochs decreased across submission order"
            )));
        }
    }
    let published_epochs = index.global_epoch();

    // Differential validation: shard streams are independent (a delete
    // routes to its insert's shard and record ids are disjoint), so the
    // state at a pinned vector is the union of per-shard serial replays up
    // to each shard's local epoch. Observed vectors are componentwise
    // monotone, so sorting by global epoch lets the cursors only advance.
    observations.sort_by_key(|o| o.global_epoch);
    let mut alive: Vec<(Rect<2>, RecordId)> = initial.clone();
    let mut cursors = vec![0usize; shards];
    let mut checked = 0u64;
    for obs in &observations {
        for (shard, cursor) in cursors.iter_mut().enumerate() {
            let shard_ops = &per_shard_ops[shard];
            while *cursor < shard_ops.len() && shard_ops[*cursor].1 <= obs.shard_epochs[shard] {
                match shard_ops[*cursor].0 {
                    IndexOp::Insert { rect, record } => alive.push((rect, record)),
                    IndexOp::Delete { record, .. } => alive.retain(|(_, r)| *r != record),
                }
                *cursor += 1;
            }
        }
        let expect: BTreeSet<RecordId> = alive
            .iter()
            .filter(|(rect, _)| rect.intersects(&probes[obs.probe]))
            .map(|(_, r)| *r)
            .collect();
        if obs.results != expect {
            let missing = expect.difference(&obs.results).count();
            let phantom = obs.results.difference(&expect).count();
            failures.push(fail(format!(
                "global epoch {} probe {}: sharded snapshot not prefix-consistent \
                 ({missing} missing, {phantom} phantom of {} expected)",
                obs.global_epoch,
                obs.probe,
                expect.len()
            )));
            if failures.len() > 8 {
                break;
            }
        }
        checked += 1;
    }

    // Final state must equal the full serial model, and the merged search
    // must come back in ascending record order (the bit-identity contract).
    for (shard, cursor) in cursors.iter_mut().enumerate() {
        let shard_ops = &per_shard_ops[shard];
        while *cursor < shard_ops.len() {
            match shard_ops[*cursor].0 {
                IndexOp::Insert { rect, record } => alive.push((rect, record)),
                IndexOp::Delete { record, .. } => alive.retain(|(_, r)| *r != record),
            }
            *cursor += 1;
        }
    }
    let snap = index.snapshot();
    let whole = Rect::new([0.0, 0.0], [7_000.0, 7_000.0]);
    let got_sorted = snap.search(&whole);
    if got_sorted.windows(2).any(|w| w[0] >= w[1]) {
        failures.push(fail("merged search results not in record order".into()));
    }
    let got: BTreeSet<RecordId> = got_sorted.into_iter().collect();
    let expect: BTreeSet<RecordId> = alive.iter().map(|(_, r)| *r).collect();
    if got != expect {
        failures.push(fail(format!(
            "final sharded snapshot diverged from serial model ({} vs {} records)",
            got.len(),
            expect.len()
        )));
    }
    let errs = snap.check_invariants();
    if !errs.is_empty() {
        failures.push(fail(format!("final sharded snapshot invariants: {errs:?}")));
    }
    drop(snap);
    index.shutdown();
    (checked, published_epochs, failures)
}

/// Runs one seed across every engine against a sharded index.
pub fn stress_seed_sharded(seed: u64, cfg: &StressConfig, shards: usize) -> SeedOutcome {
    let mut outcome = SeedOutcome::default();
    for variant in ENGINES {
        let (checked, epochs, failures) = stress_variant_sharded(seed, variant, cfg, shards);
        outcome.observations += checked;
        outcome.epochs += epochs;
        outcome.failures.extend(failures);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = StressConfig::default();
        let a = initial_records(7, 100);
        let b = initial_records(7, 100);
        assert_eq!(a, b);
        assert_eq!(mutation_stream(7, &cfg, &a), mutation_stream(7, &cfg, &b));
        assert_ne!(mutation_stream(7, &cfg, &a), mutation_stream(8, &cfg, &a));
    }

    #[test]
    fn stress_one_seed_all_variants() {
        let cfg = StressConfig {
            initial: 150,
            ops: 250,
            readers: 2,
            ..StressConfig::default()
        };
        let outcome = stress_seed(3, &cfg);
        assert!(
            outcome.failures.is_empty(),
            "violations: {:?}",
            outcome.failures
        );
        assert!(outcome.observations > 0, "readers must observe something");
        assert!(outcome.epochs >= 5, "each engine publishes epochs");
    }

    #[test]
    fn stress_one_seed_sharded() {
        let cfg = StressConfig {
            initial: 150,
            ops: 250,
            readers: 2,
            ..StressConfig::default()
        };
        for shards in [2usize, 4] {
            let outcome = stress_seed_sharded(5, &cfg, shards);
            assert!(
                outcome.failures.is_empty(),
                "{shards}-shard violations: {:?}",
                outcome.failures
            );
            assert!(outcome.observations > 0, "readers must observe something");
            assert!(outcome.epochs >= 5, "each engine publishes global epochs");
        }
    }
}
