//! Crash-sweep harness for the tiered temporal index: power-cut an
//! insert/delete/seal trace at every physical write boundary and prove the
//! recovered index holds exactly the last committed tier set.
//!
//! The structure mirrors [`crate::crash`]: a dry run with an observing
//! [`ScriptedFault`] learns the total write count and the disk epoch
//! reached after each commit; determinism makes every faulted run a
//! byte-prefix of the dry run, so the epoch found on reopen identifies
//! precisely which seal survived. The durability contract being pinned:
//!
//! * the **seal is the durability boundary** — a recovered index answers
//!   for every operation up to the last completed seal, and memtable
//!   contents past it are gone by design (never partially visible);
//! * a pure power cut anywhere inside a seal — including mid-merge, since
//!   the inline policy merges before the manifest flip — reopens cleanly
//!   on the *previous* tier set (freed extents are quarantined until the
//!   next durable commit, so the old manifest's pages are intact);
//! * a commit that reported success is never rolled back.

use crate::crash::{SplitMix64, SweepFailure};
use segidx_core::RecordId;
use segidx_geom::Rect;
use segidx_storage::{DiskManager, DiskManagerConfig, FaultInjector, ScriptedFault, StorageError};
use segidx_temporal::{TieredConfig, TieredTemporalIndex};
use std::path::Path;
use std::sync::Arc;

/// One step of a temporal crash trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TOp {
    /// Insert an interval (a temporal version rectangle).
    Insert(Rect<2>, RecordId),
    /// Delete a live entry (memtable removal or tombstone).
    Delete(Rect<2>, RecordId),
    /// Seal the memtable into a tier and commit (the durability boundary).
    Seal,
}

/// Shape of a generated temporal trace.
#[derive(Debug, Clone, Copy)]
pub struct TemporalTraceConfig {
    /// Total insert/delete operations.
    pub ops: usize,
    /// A seal is emitted every this many operations (and once at the end).
    pub seal_every: usize,
    /// Probability an op deletes a live record instead of inserting.
    pub delete_fraction: f64,
}

impl Default for TemporalTraceConfig {
    fn default() -> Self {
        Self {
            ops: 48,
            seal_every: 8,
            delete_fraction: 0.2,
        }
    }
}

/// Tiered configuration for the sweep: explicit seals only (threshold out
/// of reach), aggressive fanout-2 merging so most seals also merge, no
/// tombstone-pressure compactions (they would add nondeterministic
/// commits to the epoch ladder).
fn sweep_config(cfg: &TemporalTraceConfig) -> TieredConfig {
    TieredConfig {
        seal_threshold: cfg.ops + 1,
        level_fanout: 2,
        tombstone_limit: usize::MAX,
        ..TieredConfig::default()
    }
}

/// The deterministic trace for `seed`: interval inserts (end times mostly
/// short, occasionally spanning) with deletes mixed in and periodic seals.
/// Seals are only emitted with a non-empty memtable, so every seal is one
/// durable commit — the property the epoch ladder depends on.
pub fn temporal_trace(seed: u64, cfg: &TemporalTraceConfig) -> Vec<TOp> {
    let mut rng = SplitMix64::new(seed ^ 0x7E4D_0A17);
    let mut ops = Vec::new();
    let mut alive: Vec<(Rect<2>, RecordId)> = Vec::new();
    let mut next_record = 0u64;
    // Records currently in the (unsealed) memtable — a seal is only
    // emitted while this is non-empty, because an empty-memtable seal
    // skips its commit and would shift the epoch ladder.
    let mut memtable: Vec<RecordId> = Vec::new();
    for i in 0..cfg.ops {
        let delete = !alive.is_empty() && rng.next_f64() < cfg.delete_fraction;
        if delete {
            let victim = alive.swap_remove((rng.next_u64() as usize) % alive.len());
            memtable.retain(|r| *r != victim.1);
            ops.push(TOp::Delete(victim.0, victim.1));
        } else {
            let start = rng.next_f64() * 4_000.0;
            let len = if rng.next_u64() & 7 == 0 {
                1_000.0
            } else {
                20.0 + rng.next_f64() * 60.0
            };
            let value = rng.next_f64() * 100.0;
            let rect = Rect::new([start, value], [start + len, value]);
            let record = RecordId(next_record);
            next_record += 1;
            alive.push((rect, record));
            memtable.push(record);
            ops.push(TOp::Insert(rect, record));
        }
        if (i + 1) % cfg.seal_every.max(1) == 0 && !memtable.is_empty() {
            ops.push(TOp::Seal);
            memtable.clear();
        }
    }
    if !memtable.is_empty() {
        ops.push(TOp::Seal);
    }
    ops
}

/// Probe rectangles over the temporal domain.
pub fn temporal_probes(seed: u64, count: usize) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed ^ 0x5EA1_5EED);
    (0..count)
        .map(|_| {
            let t = rng.next_f64() * 5_000.0;
            let v = rng.next_f64() * 100.0;
            Rect::new(
                [t, v - 30.0],
                [t + 200.0 + rng.next_f64() * 800.0, v + 30.0],
            )
        })
        .collect()
}

/// Live entries after replaying the prefix up to (and including) the k-th
/// seal, then the records among them intersecting `query`. Post-seal
/// memtable operations are intentionally excluded: the seal is the
/// durability boundary.
pub fn temporal_model(ops_prefix: &[TOp], query: &Rect<2>) -> Vec<RecordId> {
    let mut alive: Vec<(Rect<2>, RecordId)> = Vec::new();
    for op in ops_prefix {
        match op {
            TOp::Insert(rect, record) => alive.push((*rect, *record)),
            TOp::Delete(_, record) => alive.retain(|(_, r)| r != record),
            TOp::Seal => {}
        }
    }
    let mut out: Vec<RecordId> = alive
        .iter()
        .filter(|(rect, _)| rect.intersects(query))
        .map(|(_, r)| *r)
        .collect();
    out.sort_unstable();
    out
}

/// How a faulted trace run ended.
#[derive(Debug)]
struct TemporalRun {
    /// Durable commits completed: the create-time empty manifest plus one
    /// per successful seal.
    commits_done: usize,
    error: Option<StorageError>,
}

fn run_temporal_trace(
    path: &Path,
    injector: Option<Arc<dyn FaultInjector>>,
    config: TieredConfig,
    ops: &[TOp],
) -> TemporalRun {
    let disk_config = DiskManagerConfig {
        fault_injector: injector,
        ..DiskManagerConfig::default()
    };
    let disk = match DiskManager::create_with(path, disk_config) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            return TemporalRun {
                commits_done: 0,
                error: Some(e),
            }
        }
    };
    let mut index = match TieredTemporalIndex::<2>::create(config, disk) {
        Ok(i) => i,
        Err(e) => {
            return TemporalRun {
                commits_done: 0,
                error: Some(e),
            }
        }
    };
    let mut commits_done = 1; // the empty manifest
    for op in ops {
        let result = match op {
            TOp::Insert(rect, record) => index.insert(*rect, *record),
            TOp::Delete(rect, record) => index.delete(rect, *record).map(|_| ()),
            TOp::Seal => {
                let r = index.seal();
                if r.is_ok() {
                    commits_done += 1;
                }
                r
            }
        };
        if let Err(e) = result {
            return TemporalRun {
                commits_done,
                error: Some(e),
            };
        }
    }
    TemporalRun {
        commits_done,
        error: None,
    }
}

/// Result of sweeping one seed through the tiered index.
#[derive(Debug)]
pub struct TemporalSweepOutcome {
    /// Total physical writes in the uncut run (cuts `0..=writes` tested).
    pub writes: u64,
    /// Differential failures; empty means the seed passed.
    pub failures: Vec<SweepFailure>,
}

/// Power-cuts the temporal trace for `seed` at every write boundary and
/// checks the recovered index answers for exactly the last committed tier
/// set. `scratch` is a directory the sweep may fill with page files.
pub fn temporal_crash_sweep(
    seed: u64,
    scratch: &Path,
    cfg: &TemporalTraceConfig,
) -> TemporalSweepOutcome {
    let ops = temporal_trace(seed, cfg);
    let probe_set = temporal_probes(seed, 16);
    let config = sweep_config(cfg);
    std::fs::create_dir_all(scratch).expect("scratch dir");

    // Dry run: learn the write count and the epoch ladder.
    let observer = Arc::new(ScriptedFault::observer());
    let dry_path = scratch.join(format!("tdry-{seed:016x}.db"));
    let outcome = run_temporal_trace(
        &dry_path,
        Some(observer.clone() as Arc<_>),
        config.clone(),
        &ops,
    );
    assert!(
        outcome.error.is_none(),
        "dry run must not fail: {:?}",
        outcome.error
    );
    let writes = observer.writes_seen();
    let total_commits = outcome.commits_done;
    let (base_epoch, commit_epochs) = {
        let disk = DiskManager::open(&dry_path).expect("reopen dry run");
        let final_epoch = disk.epoch();
        // Each commit syncs exactly once, so epochs count back
        // deterministically from the final one.
        let base = final_epoch - total_commits as u64;
        let epochs: Vec<u64> = (1..=total_commits as u64).map(|k| base + k).collect();
        (base, epochs)
    };
    // Op index (exclusive) covered by the k-th commit. Commit 1 is the
    // create-time empty manifest (prefix 0); commit k+1 is the k-th seal.
    let mut commit_prefix: Vec<usize> = vec![0];
    commit_prefix.extend(
        ops.iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, TOp::Seal))
            .map(|(i, _)| i + 1),
    );
    assert_eq!(
        commit_prefix.len(),
        total_commits,
        "every seal commits once"
    );
    remove_db(&dry_path);

    let mut failures = Vec::new();
    let mut cut_rng = SplitMix64::new(seed ^ 0x00C0_FFEE);
    for cut in 0..=writes {
        let torn = if cut_rng.next_u64() & 1 == 0 {
            Some((cut_rng.next_u64() % 4096) as usize)
        } else {
            None
        };
        let path = scratch.join(format!("tcut-{seed:016x}-{cut}.db"));
        if let Err(detail) = check_one_cut(
            &path,
            &ops,
            &probe_set,
            config.clone(),
            cut,
            torn,
            base_epoch,
            &commit_epochs,
            &commit_prefix,
        ) {
            failures.push(SweepFailure {
                seed,
                cut_at: cut,
                detail,
            });
        }
        remove_db(&path);
    }
    TemporalSweepOutcome { writes, failures }
}

#[allow(clippy::too_many_arguments)]
fn check_one_cut(
    path: &Path,
    ops: &[TOp],
    probe_set: &[Rect<2>],
    config: TieredConfig,
    cut: u64,
    torn: Option<usize>,
    base_epoch: u64,
    commit_epochs: &[u64],
    commit_prefix: &[usize],
) -> Result<(), String> {
    let fault = Arc::new(ScriptedFault::power_cut(cut, torn));
    let outcome = run_temporal_trace(path, Some(fault.clone() as Arc<_>), config.clone(), ops);
    match &outcome.error {
        None => {}
        Some(e) if e.is_injected() => {}
        Some(e) => return Err(format!("non-injected error during faulted run: {e}")),
    }

    let (disk, report) = match DiskManager::open_repair(path, DiskManagerConfig::default(), None) {
        Ok(v) => v,
        Err(e) => {
            // Only acceptable before the very first meta commit is durable.
            return if outcome.commits_done == 0
                && (e.is_corruption() || matches!(e, StorageError::Io(_)))
            {
                Ok(())
            } else {
                Err(format!("reopen failed after cut {cut}: {e}"))
            };
        }
    };
    if !report.is_clean() {
        return Err(format!(
            "pure power cut surfaced as corruption: {:?}",
            report.quarantined
        ));
    }

    let epoch = disk.epoch();
    let k = match commit_epochs.iter().position(|&e| e == epoch) {
        Some(i) => i + 1,
        None if epoch == base_epoch => 0,
        None => return Err(format!("epoch {epoch} matches no commit")),
    };
    if k < outcome.commits_done {
        return Err(format!(
            "seal {} reported success but reopened at commit {k}",
            outcome.commits_done
        ));
    }
    if k == 0 {
        // Not even the empty manifest made it; there is no database state.
        return match disk.root() {
            None => Ok(()),
            Some(r) => Err(format!("no commit durable yet root = {r:?}")),
        };
    }
    let index = TieredTemporalIndex::<2>::open(config, Arc::new(disk))
        .map_err(|e| format!("open failed at commit {k}: {e}"))?;
    index.assert_invariants();
    let prefix = &ops[..commit_prefix[k - 1]];
    for probe in probe_set {
        let expected = temporal_model(prefix, probe);
        let got = index.search(probe);
        if got != expected {
            return Err(format!(
                "probe {probe:?} after commit {k}: expected {expected:?}, got {got:?}"
            ));
        }
    }
    Ok(())
}

fn remove_db(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut meta = path.to_path_buf().into_os_string();
    meta.push(".meta");
    let _ = std::fs::remove_file(std::path::PathBuf::from(meta));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("segidx-tcrash-{}-{name}", std::process::id()))
    }

    #[test]
    fn trace_is_deterministic_and_seals_are_nonempty() {
        let cfg = TemporalTraceConfig::default();
        let a = temporal_trace(5, &cfg);
        assert_eq!(a, temporal_trace(5, &cfg));
        assert_ne!(a, temporal_trace(6, &cfg));
        assert_eq!(a.last(), Some(&TOp::Seal));
        // Every seal finds a non-empty memtable (deletes can remove
        // memtable entries, so replay the occupancy exactly).
        let mut mem: Vec<RecordId> = Vec::new();
        for op in &a {
            match op {
                TOp::Insert(_, r) => mem.push(*r),
                TOp::Delete(_, r) => mem.retain(|m| m != r),
                TOp::Seal => {
                    assert!(!mem.is_empty(), "seal with empty memtable");
                    mem.clear();
                }
            }
        }
    }

    #[test]
    fn sweep_one_seed_clean() {
        let dir = scratch("sweep");
        let cfg = TemporalTraceConfig {
            ops: 24,
            seal_every: 6,
            delete_fraction: 0.2,
        };
        let outcome = temporal_crash_sweep(3, &dir, &cfg);
        assert!(outcome.writes > 0);
        assert!(
            outcome.failures.is_empty(),
            "differential failures: {:#?}",
            outcome.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
