//! Experiment execution: build all variants (the paper's four plus the
//! HINT baseline), sweep the QAR range, collect the paper's metric.

use crate::experiment::{Experiment, Graph, Variant};
use segidx_core::{IntervalIndex, StatsSnapshot, TreeTelemetry};
use segidx_obs::HistogramSnapshot;
use segidx_storage::IoStatsSnapshot;
use segidx_workloads::{paper_query_sweep, queries_for_qar};
use std::sync::Arc;
use std::time::Instant;

/// One point of a series: the average nodes accessed per search at one QAR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Horizontal-to-vertical query aspect ratio.
    pub qar: f64,
    /// `log₁₀(qar)` — the X axis of the paper's graphs.
    pub log10_qar: f64,
    /// Average index nodes accessed per search — the Y axis.
    pub avg_nodes: f64,
}

/// Construction-side statistics for one variant.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildInfo {
    /// Index nodes after all insertions.
    pub node_count: usize,
    /// Tree height.
    pub height: u32,
    /// Physical index records (leaf + spanning).
    pub entry_count: u64,
    /// Spanning records stored (gross).
    pub spanning_stores: u64,
    /// Records cut into spanning + remnant portions.
    pub cuts: u64,
    /// Coalescing merges performed.
    pub coalesces: u64,
    /// Leaf + internal splits.
    pub splits: u64,
    /// Wall-clock build time in milliseconds.
    pub build_ms: u64,
}

/// The full sweep for one variant.
#[derive(Clone, Debug)]
pub struct Series {
    /// Which index variant.
    pub variant: Variant,
    /// One point per QAR value, in sweep order.
    pub points: Vec<SweepPoint>,
    /// Construction statistics.
    pub build: BuildInfo,
    /// Cumulative logical statistics after build + sweep.
    pub stats: StatsSnapshot,
    /// Per-search wall-time distribution over the whole sweep (nanoseconds).
    pub search_latency: HistogramSnapshot,
    /// Per-insert wall-time distribution over the build (nanoseconds).
    pub insert_latency: HistogramSnapshot,
    /// Physical I/O counters (zero for these in-memory experiment runs;
    /// populated when a variant runs over the paged storage substrate).
    pub io: IoStatsSnapshot,
}

impl Series {
    /// Buffer-pool hit rate in `[0, 1]`; 0.0 when the run performed no
    /// buffered I/O (purely in-memory experiments).
    pub fn buffer_pool_hit_rate(&self) -> f64 {
        self.io.hit_rate().unwrap_or(0.0)
    }
}

impl Series {
    /// Mean of `avg_nodes` over the points selected by `pred` (e.g. the
    /// vertical-QAR range `log₁₀(QAR) < 0`).
    pub fn mean_where(&self, pred: impl Fn(&SweepPoint) -> bool) -> f64 {
        let sel: Vec<f64> = self
            .points
            .iter()
            .filter(|p| pred(p))
            .map(|p| p.avg_nodes)
            .collect();
        if sel.is_empty() {
            return f64::NAN;
        }
        sel.iter().sum::<f64>() / sel.len() as f64
    }
}

/// All series for one graph (paper variants plus HINT).
#[derive(Clone, Debug)]
pub struct GraphResult {
    /// The experiment that produced this result.
    pub experiment: Experiment,
    /// One series per variant, in [`Variant::WITH_HINT`] order.
    pub series: Vec<Series>,
}

impl GraphResult {
    /// The series for `variant`.
    pub fn series_for(&self, variant: Variant) -> &Series {
        self.series
            .iter()
            .find(|s| s.variant == variant)
            .expect("all variants present")
    }

    /// The graph this reproduces.
    pub fn graph(&self) -> Graph {
        self.experiment.graph
    }
}

/// Runs one experiment: generates the data once, then builds and sweeps
/// every variant in parallel (one thread per variant — they are independent
/// indexes over the same input).
pub fn run_experiment(experiment: &Experiment) -> GraphResult {
    let dataset = experiment.dataset();
    let mut series: Vec<Option<Series>> = vec![None; Variant::WITH_HINT.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for variant in Variant::WITH_HINT {
            let records = &dataset.records;
            let exp = *experiment;
            handles.push(scope.spawn(move || run_variant(variant, records, &exp)));
        }
        for (i, h) in handles.into_iter().enumerate() {
            series[i] = Some(h.join().expect("variant thread panicked"));
        }
    });

    GraphResult {
        experiment: *experiment,
        series: series.into_iter().map(|s| s.unwrap()).collect(),
    }
}

/// Builds one variant over `records` and sweeps the QAR range.
pub fn run_variant(
    variant: Variant,
    records: &[(segidx_geom::Rect<2>, segidx_core::RecordId)],
    experiment: &Experiment,
) -> Series {
    let telemetry = Arc::new(TreeTelemetry::new());
    let start = Instant::now();
    let mut index = variant.build_index(experiment.tuples);
    index.set_telemetry(Some(Arc::clone(&telemetry)));
    for (rect, id) in records {
        index.insert(*rect, *id);
    }
    let build_ms = start.elapsed().as_millis() as u64;
    let insert_latency = telemetry.snapshot().insert;
    let points = sweep(index.as_ref(), experiment);
    let snap = index.stats();
    Series {
        variant,
        points,
        build: BuildInfo {
            node_count: index.node_count(),
            height: index.height(),
            entry_count: index.entry_count() as u64,
            spanning_stores: snap.spanning_stores,
            cuts: snap.cuts,
            coalesces: snap.coalesces,
            splits: snap.leaf_splits + snap.internal_splits,
            build_ms,
        },
        stats: snap,
        search_latency: telemetry.snapshot().search,
        insert_latency,
        io: IoStatsSnapshot::default(),
    }
}

/// Sweeps the paper's thirteen QAR values over a built index.
pub fn sweep(index: &dyn IntervalIndex<2>, experiment: &Experiment) -> Vec<SweepPoint> {
    let sets = if experiment.queries_per_qar == segidx_workloads::QUERIES_PER_QAR {
        paper_query_sweep(experiment.query_seed)
    } else {
        segidx_geom::PAPER_QAR_SWEEP
            .iter()
            .map(|&q| queries_for_qar(q, experiment.queries_per_qar, experiment.query_seed))
            .collect()
    };
    sets.iter()
        .map(|qs| {
            // Snapshot-diff instead of resetting: the per-QAR window is
            // isolated by subtraction, so the index's cumulative history
            // (and any concurrent observer of it) survives the sweep.
            let before = index.stats();
            for q in &qs.queries {
                let _ = index.search(q);
            }
            let window = index.stats().diff(&before);
            SweepPoint {
                qar: qs.qar,
                log10_qar: qs.log10_qar,
                avg_nodes: window.avg_nodes_per_search().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Builds each variant over the experiment's dataset and renders its
/// per-level structure report (`reproduce --inspect`).
pub fn inspect_variants(experiment: &Experiment) -> Vec<String> {
    use segidx_core::{RTree, SRTree, SkeletonRTree, SkeletonSRTree};
    let dataset = experiment.dataset();
    let buffer = crate::experiment::PAPER_PREDICTION_BUFFER.min((experiment.tuples / 10).max(1));
    let domain = segidx_workloads::domain();

    Variant::WITH_HINT
        .iter()
        .map(|variant| {
            let report = match variant {
                Variant::RTree => {
                    let mut t = RTree::<2>::new();
                    for (r, id) in &dataset.records {
                        t.tree_mut().insert(*r, *id);
                    }
                    t.tree().report().to_string()
                }
                Variant::SRTree => {
                    let mut t = SRTree::<2>::new();
                    for (r, id) in &dataset.records {
                        t.tree_mut().insert(*r, *id);
                    }
                    t.tree().report().to_string()
                }
                Variant::SkeletonRTree => {
                    let mut t =
                        SkeletonRTree::<2>::with_prediction(domain, experiment.tuples, buffer);
                    for (r, id) in &dataset.records {
                        segidx_core::IntervalIndex::insert(&mut t, *r, *id);
                    }
                    t.tree()
                        .expect("built after prediction")
                        .report()
                        .to_string()
                }
                Variant::SkeletonSRTree => {
                    let mut t =
                        SkeletonSRTree::<2>::with_prediction(domain, experiment.tuples, buffer);
                    for (r, id) in &dataset.records {
                        segidx_core::IntervalIndex::insert(&mut t, *r, *id);
                    }
                    t.tree()
                        .expect("built after prediction")
                        .report()
                        .to_string()
                }
                Variant::Hint => {
                    let mut t = segidx_core::HintIndex::<2>::with_domain(domain);
                    for (r, id) in &dataset.records {
                        t.insert(*r, *id);
                    }
                    format!(
                        "resolution 2^{} per dimension, {} populated partitions, \
                         {} stored copies of {} records",
                        t.resolution_bits().unwrap_or(0),
                        segidx_core::IntervalIndex::node_count(&t) - 1,
                        segidx_core::IntervalIndex::entry_count(&t),
                        t.len(),
                    )
                }
            };
            format!("structure of {}:\n{report}", variant.name())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_full_series() {
        let exp = Experiment {
            tuples: 3_000,
            queries_per_qar: 10,
            ..Experiment::paper(Graph::G3)
        };
        let result = run_experiment(&exp);
        assert_eq!(result.series.len(), 5, "four paper variants + HINT");
        for s in &result.series {
            assert_eq!(s.points.len(), 13, "{}", s.variant.name());
            assert!(
                s.points.iter().all(|p| p.avg_nodes >= 1.0),
                "{}: every search visits at least the root",
                s.variant.name()
            );
            assert!(s.build.node_count > 0);
            assert_eq!(
                s.stats.searches,
                13 * 10,
                "cumulative history survives the sweep (no resets)"
            );
            assert_eq!(s.search_latency.count, 13 * 10, "every search timed");
            assert!(s.insert_latency.count > 0, "build inserts timed");
            assert!(s.search_latency.p99().is_some());
        }
        // Deterministic: same experiment, same numbers.
        let again = run_experiment(&exp);
        for (a, b) in result.series.iter().zip(again.series.iter()) {
            assert_eq!(a.points.len(), b.points.len());
            for (pa, pb) in a.points.iter().zip(b.points.iter()) {
                assert_eq!(pa.avg_nodes, pb.avg_nodes);
            }
        }
    }

    #[test]
    fn mean_where_selects_ranges() {
        let s = Series {
            variant: Variant::RTree,
            points: vec![
                SweepPoint {
                    qar: 0.1,
                    log10_qar: -1.0,
                    avg_nodes: 10.0,
                },
                SweepPoint {
                    qar: 10.0,
                    log10_qar: 1.0,
                    avg_nodes: 30.0,
                },
            ],
            build: BuildInfo::default(),
            stats: StatsSnapshot::default(),
            search_latency: HistogramSnapshot::default(),
            insert_latency: HistogramSnapshot::default(),
            io: IoStatsSnapshot::default(),
        };
        assert_eq!(s.mean_where(|p| p.log10_qar < 0.0), 10.0);
        assert_eq!(s.mean_where(|p| p.log10_qar > 0.0), 30.0);
        assert!(s.mean_where(|p| p.qar > 100.0).is_nan());
    }
}
