//! Experiment descriptors: which graph, which distribution, which variants.

use segidx_core::{HintIndex, IntervalIndex, RTree, SRTree, SkeletonRTree, SkeletonSRTree};
use segidx_workloads::{domain, DataDistribution, Dataset};

/// The paper buffers the first 10,000 tuples for distribution prediction
/// (§5); smaller runs scale this down to 10% of the input.
pub const PAPER_PREDICTION_BUFFER: usize = 10_000;

/// One of the paper's evaluation figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Graph {
    /// Graph 1: I1 — uniform length, uniform Y.
    G1,
    /// Graph 2: I2 — uniform length, exponential Y.
    G2,
    /// Graph 3: I3 — exponential length, uniform Y.
    G3,
    /// Graph 4: I4 — exponential length, exponential Y.
    G4,
    /// Graph 5: R1 — rectangles, uniform sides.
    G5,
    /// Graph 6: R2 — rectangles, exponential sides.
    G6,
    /// Extra: RE1 — rectangles, exponential centroids, uniform sides
    /// (run in the paper, results omitted there for brevity).
    G7,
    /// Extra: RE2 — rectangles, exponential centroids, exponential sides.
    G8,
}

impl Graph {
    /// All graphs, in paper order (the two extras last).
    pub const ALL: [Graph; 8] = [
        Graph::G1,
        Graph::G2,
        Graph::G3,
        Graph::G4,
        Graph::G5,
        Graph::G6,
        Graph::G7,
        Graph::G8,
    ];

    /// The six graphs printed in the paper.
    pub const PAPER: [Graph; 6] = [
        Graph::G1,
        Graph::G2,
        Graph::G3,
        Graph::G4,
        Graph::G5,
        Graph::G6,
    ];

    /// Parses `1`–`8`.
    pub fn from_number(n: u32) -> Option<Graph> {
        Graph::ALL.get((n as usize).checked_sub(1)?).copied()
    }

    /// The graph number (1–8).
    pub fn number(&self) -> u32 {
        Graph::ALL.iter().position(|g| g == self).unwrap() as u32 + 1
    }

    /// The input distribution this graph evaluates.
    pub fn distribution(&self) -> DataDistribution {
        match self {
            Graph::G1 => DataDistribution::I1,
            Graph::G2 => DataDistribution::I2,
            Graph::G3 => DataDistribution::I3,
            Graph::G4 => DataDistribution::I4,
            Graph::G5 => DataDistribution::R1,
            Graph::G6 => DataDistribution::R2,
            Graph::G7 => DataDistribution::RE1,
            Graph::G8 => DataDistribution::RE2,
        }
    }

    /// The paper's caption for the graph.
    pub fn caption(&self) -> &'static str {
        match self {
            Graph::G1 => "Line segment data with uniform length and uniform Y-value distributions",
            Graph::G2 => {
                "Line segment data with uniform length and exponential Y-value distributions"
            }
            Graph::G3 => {
                "Line segment data with exponential length and uniform Y-value distributions"
            }
            Graph::G4 => {
                "Line segment data with exponential length and exponential Y-value distributions"
            }
            Graph::G5 => "Rectangle data with uniform interval length and uniform centroids",
            Graph::G6 => "Rectangle data with exponential interval length and uniform centroids",
            Graph::G7 => "Rectangle data with uniform length and exponential centroids (extra)",
            Graph::G8 => "Rectangle data with exponential length and exponential centroids (extra)",
        }
    }
}

/// The four index variants compared throughout the paper, plus the modern
/// HINT baseline ([`HintIndex`]) the harness measures them against.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Variant {
    /// Guttman's R-Tree (baseline).
    RTree,
    /// The Segment R-Tree of paper §3.
    SRTree,
    /// The Skeleton R-Tree of paper §4.
    SkeletonRTree,
    /// The Skeleton SR-Tree of paper §4 — the paper's overall winner.
    SkeletonSRTree,
    /// The hierarchical interval engine (HINT), a modern main-memory
    /// baseline run alongside the paper's four variants.
    Hint,
}

impl Variant {
    /// The paper's four variants, in the paper's presentation order.
    /// Shape claims (Graphs 1–6) quantify over exactly these.
    pub const ALL: [Variant; 4] = [
        Variant::RTree,
        Variant::SRTree,
        Variant::SkeletonRTree,
        Variant::SkeletonSRTree,
    ];

    /// Every variant the harness runs: the paper's four plus HINT.
    pub const WITH_HINT: [Variant; 5] = [
        Variant::RTree,
        Variant::SRTree,
        Variant::SkeletonRTree,
        Variant::SkeletonSRTree,
        Variant::Hint,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::RTree => "R-Tree",
            Variant::SRTree => "SR-Tree",
            Variant::SkeletonRTree => "Skeleton R-Tree",
            Variant::SkeletonSRTree => "Skeleton SR-Tree",
            Variant::Hint => "HINT",
        }
    }

    /// Whether this is a Skeleton (pre-constructed) variant.
    pub fn is_skeleton(&self) -> bool {
        matches!(self, Variant::SkeletonRTree | Variant::SkeletonSRTree)
    }

    /// Whether this variant uses the segment extensions.
    pub fn is_segment(&self) -> bool {
        matches!(self, Variant::SRTree | Variant::SkeletonSRTree)
    }

    /// Whether this is one of the paper's four variants (as opposed to the
    /// modern HINT baseline).
    pub fn is_paper(&self) -> bool {
        Variant::ALL.contains(self)
    }

    /// Builds an empty index of this variant with the paper's parameters,
    /// sized for `expected_tuples`.
    pub fn build_index(&self, expected_tuples: usize) -> Box<dyn IntervalIndex<2> + Send> {
        let buffer = PAPER_PREDICTION_BUFFER.min((expected_tuples / 10).max(1));
        match self {
            Variant::RTree => Box::new(RTree::<2>::new()),
            Variant::SRTree => Box::new(SRTree::<2>::new()),
            Variant::SkeletonRTree => Box::new(SkeletonRTree::<2>::with_prediction(
                domain(),
                expected_tuples,
                buffer,
            )),
            Variant::SkeletonSRTree => Box::new(SkeletonSRTree::<2>::with_prediction(
                domain(),
                expected_tuples,
                buffer,
            )),
            Variant::Hint => Box::new(HintIndex::<2>::with_domain(domain())),
        }
    }
}

/// A fully specified experiment: one graph at one input size.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Which graph to reproduce.
    pub graph: Graph,
    /// Input size (the paper uses 100K and 200K; Graphs 1–6 show 200K).
    pub tuples: usize,
    /// Data-generation seed.
    pub data_seed: u64,
    /// Query-generation seed.
    pub query_seed: u64,
    /// Queries per QAR value (the paper uses 100).
    pub queries_per_qar: usize,
}

impl Experiment {
    /// The paper's published configuration for a graph (200K tuples,
    /// 100 queries per QAR). The data seed is arbitrary; the paper's shape
    /// claims hold across seeds, with individual sweeps varying by roughly
    /// ±10% (Skeleton construction depends on the sampled prefix of the
    /// input, so some seeds land closer to the boundary of the softer
    /// claims than others).
    pub fn paper(graph: Graph) -> Self {
        Self {
            graph,
            tuples: 200_000,
            data_seed: 7,
            query_seed: 0x5153_4554,
            queries_per_qar: 100,
        }
    }

    /// A scaled-down configuration for smoke tests and CI.
    pub fn quick(graph: Graph) -> Self {
        Self {
            tuples: 20_000,
            queries_per_qar: 25,
            ..Self::paper(graph)
        }
    }

    /// Generates this experiment's dataset.
    pub fn dataset(&self) -> Dataset {
        self.graph
            .distribution()
            .generate(self.tuples, self.data_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_numbering_roundtrips() {
        for g in Graph::ALL {
            assert_eq!(Graph::from_number(g.number()), Some(g));
        }
        assert_eq!(Graph::from_number(0), None);
        assert_eq!(Graph::from_number(9), None);
    }

    #[test]
    fn graph_distributions_match_paper() {
        assert_eq!(Graph::G1.distribution(), DataDistribution::I1);
        assert_eq!(Graph::G4.distribution(), DataDistribution::I4);
        assert_eq!(Graph::G6.distribution(), DataDistribution::R2);
    }

    #[test]
    fn variants_build_and_accept_data() {
        for v in Variant::WITH_HINT {
            let mut idx = v.build_index(1_000);
            let ds = DataDistribution::I3.generate(1_000, 1);
            for (r, id) in &ds.records {
                idx.insert(*r, *id);
            }
            assert_eq!(idx.len(), 1_000, "{}", v.name());
            assert!(idx.check_invariants().is_empty(), "{}", v.name());
        }
    }

    #[test]
    fn prediction_buffer_scales_down() {
        // 1,000 tuples → 100-tuple buffer, so the skeleton gets built.
        let mut idx = Variant::SkeletonSRTree.build_index(1_000);
        let ds = DataDistribution::I1.generate(1_000, 2);
        for (r, id) in &ds.records {
            idx.insert(*r, *id);
        }
        assert!(idx.node_count() > 0, "skeleton was built");
    }
}
