//! Maps experiment results onto the `segidx-obs` metrics model.
//!
//! Every [`GraphResult`] series contributes one labeled family of metrics
//! (`graph` and `variant` labels), covering the latency histograms recorded
//! by the per-variant [`TreeTelemetry`](segidx_core::TreeTelemetry), the
//! logical node-access counters, the structural maintenance counters, and
//! the buffer-pool hit rate. The resulting [`MetricsSnapshot`] exports to
//! JSON (written by `reproduce --metrics-out`) and Prometheus text.

use crate::runner::GraphResult;
use segidx_concurrent::{ConcurrentIndex, IndexOp, ShardedIndex, SubmitError, ZOrderRouter};
use segidx_core::hint::HybridIndex;
use segidx_core::{IndexConfig, IntervalIndex, RecordId, Tree};
use segidx_geom::{Point, Rect};
use segidx_obs::json::{self, Value};
use segidx_obs::trace::{OpClass, Tracer};
use segidx_obs::{Metric, MetricsRegistry, MetricsSnapshot, RingBufferSink};
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Builds a registry whose single collector re-reads `results` on every
/// snapshot. The collector holds the results by `Arc`, so snapshots taken
/// later (or diffed) observe a consistent copy.
pub fn metrics_registry(results: Arc<Vec<GraphResult>>) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.register(Box::new(move |out| collect(&results, out)));
    registry
}

/// One self-contained snapshot of every metric the experiments produced.
pub fn metrics_snapshot(results: &[GraphResult]) -> MetricsSnapshot {
    let mut metrics = Vec::new();
    collect(results, &mut metrics);
    MetricsSnapshot { metrics }
}

fn collect(results: &[GraphResult], out: &mut Vec<Metric>) {
    for result in results {
        let graph = format!("{}", result.experiment.graph.number());
        for series in &result.series {
            let labels: &[(&str, &str)] = &[("graph", &graph), ("variant", series.variant.name())];
            out.push(Metric::histogram(
                "segidx_search_latency_nanos",
                labels,
                series.search_latency,
            ));
            out.push(Metric::histogram(
                "segidx_insert_latency_nanos",
                labels,
                series.insert_latency,
            ));
            let s = &series.stats;
            out.push(Metric::counter(
                "segidx_search_node_accesses_total",
                labels,
                s.search_node_accesses,
            ));
            out.push(Metric::counter("segidx_searches_total", labels, s.searches));
            out.push(Metric::counter(
                "segidx_maintenance_node_accesses_total",
                labels,
                s.maintenance_node_accesses,
            ));
            out.push(Metric::counter(
                "segidx_leaf_splits_total",
                labels,
                s.leaf_splits,
            ));
            out.push(Metric::counter(
                "segidx_internal_splits_total",
                labels,
                s.internal_splits,
            ));
            out.push(Metric::counter("segidx_cuts_total", labels, s.cuts));
            out.push(Metric::counter(
                "segidx_coalesces_total",
                labels,
                s.coalesces,
            ));
            out.push(Metric::gauge(
                "segidx_buffer_pool_hit_rate",
                labels,
                series.buffer_pool_hit_rate(),
            ));
            out.push(Metric::gauge(
                "segidx_avg_nodes_per_search",
                labels,
                s.avg_nodes_per_search().unwrap_or(0.0),
            ));
            out.push(Metric::counter(
                "segidx_build_ms",
                labels,
                series.build.build_ms,
            ));
            out.push(Metric::counter(
                "segidx_node_count",
                labels,
                series.build.node_count as u64,
            ));
        }
    }
}

/// Exercises the concurrent index service briefly and returns its metric
/// families — the epoch/queue-depth/retired-snapshot gauges, commit
/// counters and latency histograms from
/// [`IndexHandle::register_metrics`](segidx_concurrent::IndexHandle::register_metrics),
/// plus the event-sink health metrics (`segidx_events_dropped_total`,
/// `segidx_events_buffered`) from a deliberately tiny ring buffer so
/// overflow accounting is visible in the export. All carry a
/// `component="concurrent"` label instead of `graph`/`variant`.
pub fn concurrent_service_metrics() -> Vec<Metric> {
    let sink = Arc::new(RingBufferSink::new(4));
    let registry = MetricsRegistry::new();

    // `ring_sink` (not `sink`) keeps the concrete handle, so
    // `register_metrics` exports the ring's dropped/buffered series too.
    let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
        .max_batch(8)
        .ring_sink(Arc::clone(&sink))
        .start()
        .expect("memory-only start cannot fail");
    index
        .handle()
        .register_metrics(&registry, &[("component", "concurrent")]);

    // A few hundred commits with a pinned reader: enough traffic to fill
    // every histogram, retire snapshots, and overflow the 4-slot ring.
    let pinned = index.snapshot();
    for i in 0..400u64 {
        let x = (i % 100) as f64 * 10.0;
        let op = IndexOp::Insert {
            rect: Rect::new([x, x], [x + 5.0, x + 5.0]),
            record: RecordId(i),
        };
        loop {
            match index.submit(op) {
                Ok(_) => break,
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    index.flush().expect("memory-only flush cannot fail");
    let metrics = registry.snapshot().metrics;
    drop(pinned);
    index.shutdown();
    metrics
}

/// Exercises a two-shard [`ShardedIndex`] briefly and returns its metric
/// families under `component="sharded"`. Each shard's service metrics
/// carry a `shard="<id>"` label, and the rollup collector adds a
/// `shard="all"` aggregate (summed counters, merged histograms) plus the
/// sharded-only families (`segidx_sharded_shards`,
/// `segidx_sharded_global_epoch`, `segidx_sharded_routed_ops_total`,
/// routing imbalance, retired-vector gauges). The write stream alternates
/// between the two halves of the domain so both shards commit and every
/// per-shard histogram is non-empty.
pub fn sharded_service_metrics() -> Vec<Metric> {
    let registry = MetricsRegistry::new();
    let domain = Rect::new([0.0, 0.0], [1_000.0, 1_000.0]);
    let router = ZOrderRouter::new(domain, 2);
    let trees = vec![
        Tree::<2>::new(IndexConfig::srtree()),
        Tree::<2>::new(IndexConfig::srtree()),
    ];
    let index = ShardedIndex::builder(router, trees)
        .max_batch(8)
        .start()
        .expect("memory-only start cannot fail");
    index.register_metrics(&registry, &[("component", "sharded")]);

    for i in 0..200u64 {
        // Even records land in the left half (shard 0), odd in the right
        // (shard 1), so both writers commit real batches.
        let x = (i % 50) as f64 * 8.0 + if i % 2 == 0 { 0.0 } else { 500.0 };
        let y = (i % 80) as f64 * 12.0;
        let op = IndexOp::Insert {
            rect: Rect::new([x, y], [x + 4.0, y + 4.0]),
            record: RecordId(i),
        };
        loop {
            match index.submit(op) {
                Ok(_) => break,
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    index.flush().expect("memory-only flush cannot fail");
    let metrics = registry.snapshot().metrics;
    index.shutdown();
    metrics
}

/// Exercises the [`HybridIndex`] router across every query shape and
/// returns its per-shape routing counters
/// (`segidx_hybrid_routed_total{engine, shape}`) under
/// `component="hybrid"`. The full engine × shape matrix is exported,
/// zeros included, so dashboards see stable series.
pub fn hybrid_router_metrics() -> Vec<Metric> {
    let registry = MetricsRegistry::new();
    let mut hybrid = HybridIndex::<2>::new();
    for i in 0..300u64 {
        let x = ((i * 37) % 900) as f64;
        let y = ((i * 113) % 900) as f64;
        hybrid.insert(Rect::new([x, y], [x + 25.0, y]), RecordId(i));
    }
    hybrid.register_metrics(&registry, &[("component", "hybrid")]);
    // One of each shape the router distinguishes in 2-D: stab, slab
    // (one extended dimension), window (two), and nearest.
    let _ = hybrid.stab(&Point::new([450.0, 450.0]));
    let _ = hybrid.search(&Rect::new([100.0, 300.0], [700.0, 300.0]));
    let _ = hybrid.search(&Rect::new([100.0, 100.0], [400.0, 400.0]));
    let _ = hybrid.nearest(&Point::new([450.0, 450.0]), 5);
    registry.snapshot().metrics
}

/// Exercises a two-shard hybrid-engine service under forced tracing and
/// returns the tracer's metric families (`segidx_trace_*` under
/// `component="trace"`) together with the flight recorder's summary —
/// the slowest retained trace per op class, each carrying its span tree
/// and phase/profile breakdown. `reproduce --metrics-out` embeds the
/// summary as the top-level `flight_recorder` key in `metrics.json`.
pub fn traced_service_metrics() -> (Vec<Metric>, Value) {
    let tracer = Arc::new(Tracer::with_config(1, 2, 4096));
    let registry = MetricsRegistry::new();
    let domain = Rect::new([0.0, 0.0], [1_000.0, 1_000.0]);
    let router = ZOrderRouter::new(domain, 2);
    let engines = vec![HybridIndex::<2>::new(), HybridIndex::<2>::new()];
    let index = ShardedIndex::builder(router, engines)
        .max_batch(8)
        .tracer(Arc::clone(&tracer))
        .start()
        .expect("memory-only start cannot fail");
    index.register_metrics(&registry, &[("component", "trace")]);

    // Traced writes: each ticket wait pulls the writer's queue-wait /
    // apply / publish phases into the submitting trace.
    for i in 0..32u64 {
        let x = (i % 25) as f64 * 8.0 + if i % 2 == 0 { 0.0 } else { 500.0 };
        let y = (i % 20) as f64 * 12.0;
        let _g = tracer.force(OpClass::Insert, "metrics_insert");
        index
            .submit(IndexOp::Insert {
                rect: Rect::new([x, y], [x + 4.0, y + 4.0]),
                record: RecordId(i),
            })
            .expect("queue cannot fill while every submit waits")
            .wait()
            .expect("memory-only commit cannot fail");
    }
    // Traced reads: scatter/gather window searches spanning both shards.
    for i in 0..8u64 {
        let _g = tracer.force(OpClass::Search, "metrics_search");
        let snap = index.snapshot();
        let q = Rect::new([0.0, (i * 10) as f64], [1_000.0, 1_000.0]);
        let _ = snap.search_batch(&[q]);
    }
    let metrics = registry.snapshot().metrics;
    let flight = tracer.flight().summary_json();
    index.shutdown();
    (metrics, flight)
}

/// Writes the metrics for `results` as JSON to `path`, creating parent
/// directories as needed. The export also carries the concurrent index
/// service's metric families (see [`concurrent_service_metrics`]), the
/// sharded service's per-shard + rollup families (see
/// [`sharded_service_metrics`]), the hybrid router's per-shape counters
/// (see [`hybrid_router_metrics`]), the tracer health families, and a
/// top-level `flight_recorder` object with the slowest retained trace per
/// op class (see [`traced_service_metrics`]).
pub fn write_metrics_json(results: &[GraphResult], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut snapshot = metrics_snapshot(results);
    snapshot.metrics.extend(concurrent_service_metrics());
    snapshot.metrics.extend(sharded_service_metrics());
    snapshot.metrics.extend(hybrid_router_metrics());
    let (trace_metrics, flight) = traced_service_metrics();
    snapshot.metrics.extend(trace_metrics);
    // Splice the flight-recorder summary in as a sibling of "metrics".
    let rendered = snapshot.to_json();
    let body = match json::parse(&rendered) {
        Ok(Value::Object(mut fields)) => {
            fields.push(("flight_recorder".to_string(), flight));
            Value::Object(fields).render()
        }
        // to_json always renders an object; fall back to it verbatim.
        _ => rendered,
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, Graph};
    use crate::runner::run_experiment;
    use segidx_obs::json;

    fn tiny_results() -> Vec<GraphResult> {
        let e = Experiment {
            tuples: 3_000,
            queries_per_qar: 5,
            ..Experiment::quick(Graph::G3)
        };
        vec![run_experiment(&e)]
    }

    #[test]
    fn snapshot_covers_every_variant_and_metric() {
        let results = tiny_results();
        let snap = metrics_snapshot(&results);
        for series in &results[0].series {
            let labels: &[(&str, &str)] = &[("graph", "3"), ("variant", series.variant.name())];
            let search = snap.get("segidx_search_latency_nanos", labels).unwrap();
            match &search.value {
                segidx_obs::MetricValue::Histogram(h) => {
                    assert!(h.count > 0, "searches were timed");
                    assert!(h.p99().is_some());
                }
                other => panic!("expected histogram, got {other:?}"),
            }
            assert!(snap.get("segidx_insert_latency_nanos", labels).is_some());
            assert!(snap
                .get("segidx_search_node_accesses_total", labels)
                .is_some());
            assert!(snap.get("segidx_buffer_pool_hit_rate", labels).is_some());
        }
    }

    #[test]
    fn registry_collector_rereads_results() {
        let results = Arc::new(tiny_results());
        let registry = metrics_registry(Arc::clone(&results));
        assert_eq!(registry.collector_count(), 1);
        let a = registry.snapshot();
        let b = registry.snapshot();
        assert_eq!(a, b, "same results, same snapshot");
        assert!(a.diff(&b).metrics.iter().all(|m| match &m.value {
            segidx_obs::MetricValue::Counter(v) => *v == 0,
            _ => true,
        }));
    }

    #[test]
    fn concurrent_service_metrics_cover_gauges_counters_and_drops() {
        let metrics = concurrent_service_metrics();
        let snap = MetricsSnapshot { metrics };
        let labels: &[(&str, &str)] = &[("component", "concurrent")];
        for name in [
            "segidx_concurrent_epoch",
            "segidx_concurrent_queue_depth",
            "segidx_concurrent_retired_snapshots",
            "segidx_concurrent_active_readers",
            "segidx_events_buffered",
        ] {
            assert!(snap.get(name, labels).is_some(), "missing gauge {name}");
        }
        let commits = snap.get("segidx_concurrent_commits_total", labels).unwrap();
        match &commits.value {
            segidx_obs::MetricValue::Counter(v) => assert!(*v > 0, "service committed"),
            other => panic!("expected counter, got {other:?}"),
        }
        let dropped = snap.get("segidx_events_dropped_total", labels).unwrap();
        match &dropped.value {
            segidx_obs::MetricValue::Counter(v) => {
                assert!(
                    *v > 0,
                    "4-slot ring must overflow under hundreds of commits"
                )
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match &snap
            .get("segidx_concurrent_commit_latency_nanos", labels)
            .unwrap()
            .value
        {
            segidx_obs::MetricValue::Histogram(h) => assert!(h.count > 0),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn sharded_service_metrics_cover_every_shard_and_the_rollup() {
        let metrics = sharded_service_metrics();
        let snap = MetricsSnapshot { metrics };
        // Every shard id and the rollup export the full service family.
        for shard in ["0", "1", "all"] {
            let labels: &[(&str, &str)] = &[("component", "sharded"), ("shard", shard)];
            for name in [
                "segidx_concurrent_epoch",
                "segidx_concurrent_queue_depth",
                "segidx_concurrent_retired_snapshots",
                "segidx_concurrent_retired_highwater",
                "segidx_concurrent_active_readers",
            ] {
                assert!(
                    snap.get(name, labels).is_some(),
                    "missing gauge {name} for shard {shard}"
                );
            }
            let commits = snap
                .get("segidx_concurrent_commits_total", labels)
                .unwrap_or_else(|| panic!("missing commits counter for shard {shard}"));
            match &commits.value {
                segidx_obs::MetricValue::Counter(v) => {
                    assert!(*v > 0, "shard {shard} committed")
                }
                other => panic!("expected counter, got {other:?}"),
            }
            match &snap
                .get("segidx_concurrent_commit_latency_nanos", labels)
                .unwrap()
                .value
            {
                segidx_obs::MetricValue::Histogram(h) => {
                    assert!(h.count > 0, "shard {shard} histogram populated")
                }
                other => panic!("expected histogram, got {other:?}"),
            }
            assert!(
                snap.get("segidx_sharded_routed_ops_total", labels)
                    .is_some(),
                "missing routed-ops counter for shard {shard}"
            );
        }
        // Sharded-only rollup families.
        let all: &[(&str, &str)] = &[("component", "sharded"), ("shard", "all")];
        for name in [
            "segidx_sharded_shards",
            "segidx_sharded_global_epoch",
            "segidx_sharded_retired_vectors",
            "segidx_sharded_retired_vector_highwater",
            "segidx_sharded_routing_imbalance",
            "segidx_sharded_global_publishes_total",
        ] {
            assert!(snap.get(name, all).is_some(), "missing rollup {name}");
        }
        match &snap.get("segidx_sharded_shards", all).unwrap().value {
            segidx_obs::MetricValue::Gauge(v) => assert_eq!(*v, 2.0),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn hybrid_router_metrics_cover_the_shape_matrix() {
        let metrics = hybrid_router_metrics();
        let snap = MetricsSnapshot { metrics };
        for engine in ["hint", "tree"] {
            for shape in ["one_d", "stab", "slab", "window", "nearest"] {
                let labels: &[(&str, &str)] = &[
                    ("component", "hybrid"),
                    ("engine", engine),
                    ("shape", shape),
                ];
                assert!(
                    snap.get("segidx_hybrid_routed_total", labels).is_some(),
                    "missing {engine}/{shape}"
                );
            }
        }
        // The exercise actually routed: stab went to HINT, nearest to tree.
        let stab = snap
            .get(
                "segidx_hybrid_routed_total",
                &[
                    ("component", "hybrid"),
                    ("engine", "hint"),
                    ("shape", "stab"),
                ],
            )
            .unwrap();
        match &stab.value {
            segidx_obs::MetricValue::Counter(v) => assert!(*v > 0),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn traced_service_metrics_populate_tracer_families_and_flight_summary() {
        let (metrics, flight) = traced_service_metrics();
        let snap = MetricsSnapshot { metrics };
        let labels: &[(&str, &str)] = &[("component", "trace")];
        for name in [
            "segidx_trace_started_total",
            "segidx_trace_sampled_total",
            "segidx_trace_spans_dropped_total",
            "segidx_trace_spans_dropped",
            "segidx_trace_flight_retained",
        ] {
            assert!(snap.get(name, labels).is_some(), "missing {name}");
        }
        match &snap
            .get("segidx_trace_sampled_total", labels)
            .unwrap()
            .value
        {
            segidx_obs::MetricValue::Counter(v) => assert!(*v >= 40, "forced 40 traces, got {v}"),
            other => panic!("expected counter, got {other:?}"),
        }
        // The summary retains both op classes, each with a well-formed
        // slowest entry carrying a duration and a profile.
        for class in ["insert", "search"] {
            let entry = flight.get(class).unwrap_or_else(|| panic!("no {class}"));
            assert!(entry.get("retained").and_then(Value::as_i64).unwrap() >= 1);
            let slowest = entry.get("slowest").unwrap();
            assert!(
                slowest
                    .get("duration_nanos")
                    .and_then(Value::as_i64)
                    .unwrap()
                    > 0
            );
            assert!(slowest.get("profile").is_some(), "{class} profile missing");
        }
    }

    #[test]
    fn written_json_parses_and_roundtrips() {
        let results = tiny_results();
        let dir = std::env::temp_dir().join("segidx-metrics-test");
        let path = dir.join("metrics.json");
        write_metrics_json(&results, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value = json::parse(&text).unwrap();
        let metrics = value.get("metrics").and_then(|v| v.as_array()).unwrap();
        assert!(!metrics.is_empty());
        let flight = value.get("flight_recorder").expect("flight_recorder key");
        assert!(
            flight.get("search").is_some() || flight.get("insert").is_some(),
            "flight recorder retained at least one class"
        );
        // Round-trip: render → parse → render is a fixpoint.
        assert_eq!(
            json::parse(&value.render()).unwrap().render(),
            value.render()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
