//! Maps experiment results onto the `segidx-obs` metrics model.
//!
//! Every [`GraphResult`] series contributes one labeled family of metrics
//! (`graph` and `variant` labels), covering the latency histograms recorded
//! by the per-variant [`TreeTelemetry`](segidx_core::TreeTelemetry), the
//! logical node-access counters, the structural maintenance counters, and
//! the buffer-pool hit rate. The resulting [`MetricsSnapshot`] exports to
//! JSON (written by `reproduce --metrics-out`) and Prometheus text.

use crate::runner::GraphResult;
use segidx_obs::{Metric, MetricsRegistry, MetricsSnapshot};
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Builds a registry whose single collector re-reads `results` on every
/// snapshot. The collector holds the results by `Arc`, so snapshots taken
/// later (or diffed) observe a consistent copy.
pub fn metrics_registry(results: Arc<Vec<GraphResult>>) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.register(Box::new(move |out| collect(&results, out)));
    registry
}

/// One self-contained snapshot of every metric the experiments produced.
pub fn metrics_snapshot(results: &[GraphResult]) -> MetricsSnapshot {
    let mut metrics = Vec::new();
    collect(results, &mut metrics);
    MetricsSnapshot { metrics }
}

fn collect(results: &[GraphResult], out: &mut Vec<Metric>) {
    for result in results {
        let graph = format!("{}", result.experiment.graph.number());
        for series in &result.series {
            let labels: &[(&str, &str)] = &[("graph", &graph), ("variant", series.variant.name())];
            out.push(Metric::histogram(
                "segidx_search_latency_nanos",
                labels,
                series.search_latency,
            ));
            out.push(Metric::histogram(
                "segidx_insert_latency_nanos",
                labels,
                series.insert_latency,
            ));
            let s = &series.stats;
            out.push(Metric::counter(
                "segidx_search_node_accesses_total",
                labels,
                s.search_node_accesses,
            ));
            out.push(Metric::counter("segidx_searches_total", labels, s.searches));
            out.push(Metric::counter(
                "segidx_maintenance_node_accesses_total",
                labels,
                s.maintenance_node_accesses,
            ));
            out.push(Metric::counter(
                "segidx_leaf_splits_total",
                labels,
                s.leaf_splits,
            ));
            out.push(Metric::counter(
                "segidx_internal_splits_total",
                labels,
                s.internal_splits,
            ));
            out.push(Metric::counter("segidx_cuts_total", labels, s.cuts));
            out.push(Metric::counter(
                "segidx_coalesces_total",
                labels,
                s.coalesces,
            ));
            out.push(Metric::gauge(
                "segidx_buffer_pool_hit_rate",
                labels,
                series.buffer_pool_hit_rate(),
            ));
            out.push(Metric::gauge(
                "segidx_avg_nodes_per_search",
                labels,
                s.avg_nodes_per_search().unwrap_or(0.0),
            ));
            out.push(Metric::counter(
                "segidx_build_ms",
                labels,
                series.build.build_ms,
            ));
            out.push(Metric::counter(
                "segidx_node_count",
                labels,
                series.build.node_count as u64,
            ));
        }
    }
}

/// Writes the metrics for `results` as JSON to `path`, creating parent
/// directories as needed.
pub fn write_metrics_json(results: &[GraphResult], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let snapshot = metrics_snapshot(results);
    let mut f = std::fs::File::create(path)?;
    f.write_all(snapshot.to_json().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, Graph};
    use crate::runner::run_experiment;
    use segidx_obs::json;

    fn tiny_results() -> Vec<GraphResult> {
        let e = Experiment {
            tuples: 3_000,
            queries_per_qar: 5,
            ..Experiment::quick(Graph::G3)
        };
        vec![run_experiment(&e)]
    }

    #[test]
    fn snapshot_covers_every_variant_and_metric() {
        let results = tiny_results();
        let snap = metrics_snapshot(&results);
        for series in &results[0].series {
            let labels: &[(&str, &str)] = &[("graph", "3"), ("variant", series.variant.name())];
            let search = snap.get("segidx_search_latency_nanos", labels).unwrap();
            match &search.value {
                segidx_obs::MetricValue::Histogram(h) => {
                    assert!(h.count > 0, "searches were timed");
                    assert!(h.p99().is_some());
                }
                other => panic!("expected histogram, got {other:?}"),
            }
            assert!(snap.get("segidx_insert_latency_nanos", labels).is_some());
            assert!(snap
                .get("segidx_search_node_accesses_total", labels)
                .is_some());
            assert!(snap.get("segidx_buffer_pool_hit_rate", labels).is_some());
        }
    }

    #[test]
    fn registry_collector_rereads_results() {
        let results = Arc::new(tiny_results());
        let registry = metrics_registry(Arc::clone(&results));
        assert_eq!(registry.collector_count(), 1);
        let a = registry.snapshot();
        let b = registry.snapshot();
        assert_eq!(a, b, "same results, same snapshot");
        assert!(a.diff(&b).metrics.iter().all(|m| match &m.value {
            segidx_obs::MetricValue::Counter(v) => *v == 0,
            _ => true,
        }));
    }

    #[test]
    fn written_json_parses_and_roundtrips() {
        let results = tiny_results();
        let dir = std::env::temp_dir().join("segidx-metrics-test");
        let path = dir.join("metrics.json");
        write_metrics_json(&results, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value = json::parse(&text).unwrap();
        let metrics = value.get("metrics").and_then(|v| v.as_array()).unwrap();
        assert!(!metrics.is_empty());
        // Round-trip: render → parse → render is a fixpoint.
        assert_eq!(
            json::parse(&value.render()).unwrap().render(),
            value.render()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
