//! The listener: binds TCP, accepts connections, and owns everything the
//! connections share (backend, telemetry, metrics registry, tracer).

use crate::backend::{Backend, BackendConfig};
use crate::conn;
use crate::frame::DEFAULT_MAX_FRAME;
use crate::telemetry::ServerStats;
use segidx_obs::{MetricsRegistry, RingBufferSink, Tracer};
use segidx_temporal::{TemporalBackend, TemporalConfig, TemporalTable, TieredConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Everything a connection needs, shared by reference.
pub(crate) struct Shared {
    /// The index service behind the wire.
    pub backend: Backend,
    /// Server-lifetime connection telemetry.
    pub stats: Arc<ServerStats>,
    /// The registry `METRICS` snapshots (server + index + tracer families).
    pub registry: MetricsRegistry,
    /// Samples slow operations into the flight recorder.
    pub tracer: Arc<Tracer>,
    /// Per-connection inbound frame-size cap.
    pub max_frame: usize,
    /// The temporal table behind `RECORD` / `AS OF` / `WITHIN`, backed by
    /// the append-optimized tiered index. Statements execute inline under
    /// this lock (temporal writes are not routed through the commit
    /// queue — the tiered memtable absorbs them directly).
    pub temporal: Mutex<TemporalTable>,
}

/// Construction parameters for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; port `0` picks a free one (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Backend sizing (shard count, queue capacity, routing domain).
    pub backend: BackendConfig,
    /// Inbound frame-size cap per connection.
    pub max_frame: usize,
    /// Trace 1-in-N operations into the flight recorder (`0` disables
    /// sampling; forced traces still work).
    pub trace_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backend: BackendConfig::default(),
            max_frame: DEFAULT_MAX_FRAME,
            trace_sample: 0,
        }
    }
}

/// A running server: an accept loop plus two threads per live connection
/// (reader and response flusher). Dropping the handle does **not** stop
/// the server; call [`shutdown`](Self::shutdown).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, starts the backend writer thread(s), registers
    /// every metric family (server, index service, tracer, event ring) on
    /// one registry, and spawns the accept loop.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let tracer = Arc::new(Tracer::with_config(config.trace_sample, 8, 4096));
        let ring = Arc::new(RingBufferSink::new(4096));
        let backend = Backend::start(&config.backend, Arc::clone(&tracer), Arc::clone(&ring))?;

        let registry = MetricsRegistry::new();
        let stats = Arc::new(ServerStats::new());
        stats.register_metrics(&registry, &[]);
        backend.register_metrics(&registry, &[]);

        // The temporal table rides the append-optimized tiered index; its
        // seal/merge telemetry joins the same registry and event ring.
        let mut table = TemporalTable::new(TemporalConfig {
            backend: TemporalBackend::Tiered(TieredConfig::default()),
            ..TemporalConfig::default()
        });
        let temporal_telemetry = Arc::new(segidx_temporal::TieredTelemetry::new());
        temporal_telemetry.register(&registry, &[]);
        let tiered = table.tiered_index_mut().expect("tiered backend");
        tiered.set_telemetry(Some(Arc::clone(&temporal_telemetry)));
        tiered.set_sink(Some(ring));

        let shared = Arc::new(Shared {
            backend,
            stats,
            registry,
            tracer,
            max_frame: config.max_frame,
            temporal: Mutex::new(table),
        });

        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("segidx-accept".to_string())
                .spawn(move || accept_loop(listener, shared, stop))?
        };

        Ok(Server {
            shared,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-lifetime telemetry (shared with live connections).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.shared.stats
    }

    /// The registry behind the `METRICS` statement.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// Stops accepting new connections and joins the accept loop. Live
    /// connections keep being served until their clients hang up; the
    /// backend writer threads stay up for them (they are detached with the
    /// process, exactly like a real server draining on SIGTERM).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if that
        // fails the listener is already dead and accept() has errored.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("segidx-conn".to_string())
                    .spawn(move || conn::serve(stream, shared));
                if spawned.is_err() {
                    // Out of threads: shed the connection rather than die.
                    continue;
                }
            }
            // Transient per-connection failures (ECONNABORTED etc.) leave
            // the listener usable; keep accepting.
            Err(_) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_request, FrameDecoder, Mode};
    use std::io::{Read, Write};

    fn read_line(stream: &mut TcpStream) -> String {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = stream.read(&mut byte).unwrap();
            assert!(n > 0, "server closed before newline");
            if byte[0] == b'\n' {
                break;
            }
            line.push(byte[0]);
        }
        String::from_utf8(line).unwrap()
    }

    #[test]
    fn netcat_style_session() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.write_all(b"PING\r\n").unwrap();
        assert_eq!(read_line(&mut c), "PONG");
        c.write_all(b"INSERT RECT (1, 1) (2, 2) ID 7\n").unwrap();
        assert!(read_line(&mut c).starts_with("OK epoch="));
        c.write_all(b"FLUSH\n").unwrap();
        assert!(read_line(&mut c).starts_with("OK epoch="));
        c.write_all(b"SEARCH WINDOW (0, 0) (3, 3)\n").unwrap();
        assert_eq!(read_line(&mut c), "ROWS 1 7");
        c.write_all(b"SEARCH WINDOW (5, 5) (6, 6)\n").unwrap();
        assert_eq!(read_line(&mut c), "ROWS 0");
        drop(c);
        server.shutdown();
    }

    #[test]
    fn temporal_session() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.write_all(b"RECORD 1 VALUE 30000 AT 1975\n").unwrap();
        assert_eq!(read_line(&mut c), "OK version=0");
        c.write_all(b"RECORD 1 VALUE 41000 AT 1979.5\n").unwrap();
        assert_eq!(read_line(&mut c), "OK version=1");
        c.write_all(b"RECORD 2 VALUE 30000 AT 1974\n").unwrap();
        assert_eq!(read_line(&mut c), "OK version=2");
        c.write_all(b"AS OF 1977\n").unwrap();
        assert_eq!(read_line(&mut c), "VERS 2 0:1=30000.0 2:2=30000.0");
        c.write_all(b"AS OF 1980\n").unwrap();
        assert_eq!(read_line(&mut c), "VERS 2 1:1=41000.0 2:2=30000.0");
        // Versions overlapping [1974, 1980] that lived at most 10 units:
        // only employee 1's closed versions qualify (2's is still open).
        c.write_all(b"WITHIN (1974, 1980) DURATION 0 10\n").unwrap();
        assert_eq!(read_line(&mut c), "VERS 1 0:1=30000.0");
        // Queries at or past the horizon are typed errors, not empty rows.
        c.write_all(b"AS OF 1e308\n").unwrap();
        assert!(read_line(&mut c).starts_with("ERR exec timestamp"));
        c.write_all(b"RECORD 3 VALUE 1 AT 1e308\n").unwrap();
        assert!(read_line(&mut c).starts_with("ERR exec"));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn binary_frames_pipeline() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let mut out = Vec::new();
        for i in 0..32 {
            encode_request(&format!("INSERT RECT ({i}, 0) ({i}.5, 1) ID {i}"), &mut out);
        }
        encode_request("FLUSH", &mut out);
        encode_request("STAB POINT (10.25, 0.5)", &mut out);
        c.write_all(&out).unwrap();

        let mut dec = FrameDecoder::new();
        let mut responses = Vec::new();
        let mut buf = [0u8; 4096];
        while responses.len() < 34 {
            let n = c.read(&mut buf).unwrap();
            assert!(n > 0);
            dec.feed(&buf[..n]);
            while let Some(f) = dec.next_frame().unwrap() {
                assert_eq!(f.mode, Mode::Binary);
                responses.push(f.text);
            }
        }
        for r in &responses[..33] {
            assert!(r.starts_with("OK epoch="), "{r}");
        }
        assert_eq!(responses[33], "ROWS 1 10");
        server.shutdown();
    }
}
