//! The index behind the wire: either a single [`ConcurrentIndex`] (one
//! writer, epoch-snapshot readers) or a [`ShardedIndex`] (Z-order-routed
//! multi-writer). The server is written against this enum so `--shards 1`
//! avoids the routing layer entirely while `--shards N` scales writers.

use segidx_concurrent::{
    CommitError, CommitTicket, ConcurrentIndex, IndexOp, ShardedIndex, SnapshotEngine, SubmitError,
    ZOrderRouter,
};
use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::{Point, Rect};
use segidx_obs::{MetricsRegistry, RingBufferSink, Tracer};
use std::sync::Arc;

/// One `k`-nearest result row: record id + distance.
pub type NearHit = (RecordId, f64);

/// The server's index dimensionality. The wire grammar is
/// dimension-agnostic; execution validates point arity against this.
pub const DIMS: usize = 2;

/// The engine serving a server process.
pub enum Backend {
    /// Single writer, no routing layer.
    Concurrent(ConcurrentIndex<DIMS>),
    /// Z-order-routed shards, one writer each.
    Sharded(ShardedIndex<DIMS>),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Concurrent(_) => write!(f, "Backend::Concurrent"),
            Backend::Sharded(ix) => {
                write!(f, "Backend::Sharded(shards={})", ix.shard_count())
            }
        }
    }
}

/// Construction parameters for [`Backend::start`].
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Writer count; `1` selects the unsharded engine.
    pub shards: usize,
    /// Submission-queue capacity per writer (admission-control depth).
    pub queue_capacity: usize,
    /// The coordinate domain shard routing covers (rectangles outside are
    /// still indexed — they route to the shard of their clamped center).
    pub domain: Rect<DIMS>,
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_capacity: 4096,
            domain: Rect::new([0.0, 0.0], [1_000_000.0, 1_000_000.0]),
        }
    }
}

impl Backend {
    /// Starts the writer thread(s) and returns the running backend, with
    /// the given tracer and event ring wired through the index builders so
    /// slow commits land in the flight recorder.
    pub fn start(
        config: &BackendConfig,
        tracer: Arc<Tracer>,
        ring: Arc<RingBufferSink>,
    ) -> std::io::Result<Backend> {
        let fail = |e| std::io::Error::other(format!("index start failed: {e:?}"));
        if config.shards <= 1 {
            let ix = ConcurrentIndex::builder(Tree::new(IndexConfig::srtree()))
                .queue_capacity(config.queue_capacity)
                .tracer(tracer)
                .ring_sink(ring)
                .start()
                .map_err(fail)?;
            return Ok(Backend::Concurrent(ix));
        }
        let shards = config.shards.next_power_of_two();
        let router = ZOrderRouter::new(config.domain, shards);
        let trees: Vec<Tree<DIMS>> = (0..shards)
            .map(|_| Tree::new(IndexConfig::srtree()))
            .collect();
        let ix = ShardedIndex::builder(router, trees)
            .queue_capacity(config.queue_capacity)
            .tracer(tracer)
            .ring_sink(ring)
            .start()
            .map_err(fail)?;
        Ok(Backend::Sharded(ix))
    }

    /// Submits a batch of writes under one admission lock per writer;
    /// per-op results preserve input order.
    pub fn submit_batch(&self, ops: Vec<IndexOp<DIMS>>) -> Vec<Result<CommitTicket, SubmitError>> {
        match self {
            Backend::Concurrent(ix) => ix.submit_batch(ops),
            Backend::Sharded(ix) => ix.submit_batch(ops),
        }
    }

    /// Runs a batch of window queries against one consistent snapshot,
    /// reusing the engine's `SearchCursor` across queries.
    pub fn search_many(&self, queries: &[Rect<DIMS>]) -> Vec<Vec<RecordId>> {
        match self {
            Backend::Concurrent(ix) => ix.snapshot().search_many(queries),
            Backend::Sharded(ix) => ix.snapshot().search_batch(queries),
        }
    }

    /// Runs a batch of stabbing queries against one consistent snapshot.
    pub fn stab_many(&self, points: &[Point<DIMS>]) -> Vec<Vec<RecordId>> {
        match self {
            Backend::Concurrent(ix) => ix.snapshot().stab_many(points),
            Backend::Sharded(ix) => ix.snapshot().stab_batch(points),
        }
    }

    /// `k` nearest neighbours to `p` with their distances.
    pub fn nearest(&self, p: &Point<DIMS>, k: usize) -> Vec<NearHit> {
        let hits = match self {
            Backend::Concurrent(ix) => ix.snapshot().nearest(p, k),
            Backend::Sharded(ix) => ix.snapshot().nearest(p, k),
        };
        hits.into_iter().map(|n| (n.record, n.distance)).collect()
    }

    /// Blocks until every previously admitted write is committed; returns
    /// the resulting (global) epoch.
    pub fn flush(&self) -> Result<u64, CommitError> {
        match self {
            Backend::Concurrent(ix) => ix.flush().map(|r| r.epoch),
            Backend::Sharded(ix) => {
                ix.flush()?;
                Ok(ix.global_epoch())
            }
        }
    }

    /// Records currently indexed.
    pub fn len(&self) -> usize {
        match self {
            Backend::Concurrent(ix) => ix.snapshot().len(),
            Backend::Sharded(ix) => ix.snapshot().len(),
        }
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current (global) commit epoch.
    pub fn epoch(&self) -> u64 {
        match self {
            Backend::Concurrent(ix) => ix.epoch(),
            Backend::Sharded(ix) => ix.global_epoch(),
        }
    }

    /// Registers the index's own metric families alongside the server's,
    /// under the `component` label the workspace's metrics tooling keys
    /// on (`"concurrent"` / `"sharded"`), plus any extra labels given.
    pub fn register_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        match self {
            Backend::Concurrent(ix) => {
                let mut l = vec![("component", "concurrent")];
                l.extend_from_slice(labels);
                ix.handle().register_metrics(registry, &l);
            }
            Backend::Sharded(ix) => {
                let mut l = vec![("component", "sharded")];
                l.extend_from_slice(labels);
                ix.register_metrics(registry, &l);
            }
        }
    }
}
