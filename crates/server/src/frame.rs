//! The wire framing: length-prefixed binary frames with a netcat-friendly
//! line mode, decoded incrementally from a growing byte buffer.
//!
//! # Frame layout
//!
//! **Binary mode** — a 4-byte big-endian payload length `N` followed by
//! `N` bytes of UTF-8 statement text. `N` must be in `1..=max_frame`
//! (default [`DEFAULT_MAX_FRAME`]); larger prefixes are rejected with the
//! typed [`FrameError::TooLarge`] *before* any payload is buffered, so an
//! attacker-supplied length cannot balloon memory.
//!
//! **Line mode** — any frame whose first byte is a printable ASCII
//! character (`0x20..=0x7e`) is read as a newline-terminated line (a
//! trailing `\r` is stripped). Because binary lengths are capped at
//! `max_frame` ≤ 16 MiB, a valid length prefix always starts with a byte
//! `< 0x20`, so the two modes cannot be confused. Line mode is what makes
//! the server `netcat`-able; responses mirror the mode of their request.
//!
//! Both modes pipeline: a client may write any number of back-to-back
//! frames before reading a single response, and the decoder yields them
//! one by one regardless of how the bytes were chunked by the transport.

use std::fmt;

/// Default inbound frame-size cap: 1 MiB of statement text.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Hard ceiling on configurable frame caps (keeps the binary/line mode
/// disambiguation sound: `16 MiB >> 24 = 0x01 < 0x20`).
pub const MAX_FRAME_CEILING: usize = 16 << 20;

/// How a frame arrived (and therefore how its response must be encoded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// 4-byte big-endian length prefix + payload.
    Binary,
    /// Newline-terminated text (the `netcat` mode).
    Line,
}

impl Mode {
    /// Stable lowercase name for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Binary => "binary",
            Mode::Line => "line",
        }
    }
}

/// One decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The framing the bytes arrived in.
    pub mode: Mode,
    /// The statement text (UTF-8, validated).
    pub text: String,
}

/// Why the byte stream could not be framed. All variants are protocol
/// errors: the connection is no longer in a decodable state and must be
/// closed after reporting the error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix (or an unterminated line) exceeded the cap.
    TooLarge {
        /// The offending length (buffered bytes so far for a line).
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// A zero-length binary frame.
    Empty,
    /// The payload was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::InvalidUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder: [`feed`](Self::feed) raw bytes in whatever
/// chunks the socket produced, then pull complete frames with
/// [`next_frame`](Self::next_frame) until it returns `Ok(None)`.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    start: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder enforcing [`DEFAULT_MAX_FRAME`].
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A decoder enforcing a custom cap (clamped to
    /// [`MAX_FRAME_CEILING`]).
    pub fn with_max_frame(max_frame: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            max_frame: max_frame.clamp(1, MAX_FRAME_CEILING),
        }
    }

    /// The enforced frame-size cap.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, `Ok(None)` if more bytes are
    /// needed. After an `Err` the stream is unrecoverable: report the
    /// error and close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buf[self.start..];
        let Some(&first) = pending.first() else {
            return Ok(None);
        };
        if (0x20..=0x7e).contains(&first) {
            return self.next_line();
        }
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len == 0 {
            return Err(FrameError::Empty);
        }
        if len > self.max_frame {
            // Reject on the prefix alone: the payload is never buffered.
            return Err(FrameError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = &pending[4..4 + len];
        let text = std::str::from_utf8(payload)
            .map_err(|_| FrameError::InvalidUtf8)?
            .to_string();
        self.start += 4 + len;
        Ok(Some(Frame {
            mode: Mode::Binary,
            text,
        }))
    }

    fn next_line(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buf[self.start..];
        let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
            if pending.len() > self.max_frame {
                return Err(FrameError::TooLarge {
                    len: pending.len(),
                    max: self.max_frame,
                });
            }
            return Ok(None);
        };
        let mut line = &pending[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| FrameError::InvalidUtf8)?
            .to_string();
        self.start += nl + 1;
        Ok(Some(Frame {
            mode: Mode::Line,
            text,
        }))
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes one response in the mode of the request it answers, appending
/// to `out` (so a flusher can pack many responses into one socket write).
/// Line-mode payloads must not contain `\n`; the encoder replaces any
/// with spaces to keep the stream framed.
pub fn encode_response(mode: Mode, payload: &str, out: &mut Vec<u8>) {
    match mode {
        Mode::Binary => {
            out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            out.extend_from_slice(payload.as_bytes());
        }
        Mode::Line => {
            if payload.as_bytes().contains(&b'\n') {
                let flat: String = payload
                    .chars()
                    .map(|c| if c == '\n' { ' ' } else { c })
                    .collect();
                out.extend_from_slice(flat.as_bytes());
            } else {
                out.extend_from_slice(payload.as_bytes());
            }
            out.push(b'\n');
        }
    }
}

/// Encodes one request frame in binary mode (the client-side helper the
/// load generator and tests use).
pub fn encode_request(payload: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_frame_roundtrip() {
        let mut out = Vec::new();
        encode_request("PING", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.mode, Mode::Binary);
        assert_eq!(frame.text, "PING");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn partial_reads_reassemble() {
        let mut out = Vec::new();
        encode_request("SEARCH WINDOW (0.0, 0.0) (1.0, 1.0)", &mut out);
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time: no chunking may confuse the decoder.
        for b in &out {
            assert_eq!(dec.next_frame().unwrap(), None);
            dec.feed(std::slice::from_ref(b));
        }
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.text, "SEARCH WINDOW (0.0, 0.0) (1.0, 1.0)");
    }

    #[test]
    fn pipelined_back_to_back_frames() {
        let mut out = Vec::new();
        for i in 0..100 {
            encode_request(&format!("STAB POINT ({i}.5, 2.0)"), &mut out);
        }
        // Mix a line-mode frame into the pipeline.
        out.extend_from_slice(b"PING\r\n");
        encode_request("FLUSH", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        for i in 0..100 {
            let f = dec.next_frame().unwrap().unwrap();
            assert_eq!(f.mode, Mode::Binary);
            assert_eq!(f.text, format!("STAB POINT ({i}.5, 2.0)"));
        }
        let ping = dec.next_frame().unwrap().unwrap();
        assert_eq!((ping.mode, ping.text.as_str()), (Mode::Line, "PING"));
        let flush = dec.next_frame().unwrap().unwrap();
        assert_eq!((flush.mode, flush.text.as_str()), (Mode::Binary, "FLUSH"));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_binary_frame_is_rejected_from_the_prefix_alone() {
        let mut dec = FrameDecoder::with_max_frame(1024);
        // Length prefix alone, no payload: must reject immediately.
        dec.feed(&(2048u32).to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge {
                len: 2048,
                max: 1024
            })
        );
    }

    #[test]
    fn oversized_line_is_rejected() {
        let mut dec = FrameDecoder::with_max_frame(64);
        dec.feed(&[b'A'; 80]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::TooLarge { len: 80, max: 64 })
        ));
    }

    #[test]
    fn zero_length_and_bad_utf8_are_typed() {
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_be_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::Empty));

        let mut dec = FrameDecoder::new();
        dec.feed(&2u32.to_be_bytes());
        dec.feed(&[0xff, 0xfe]);
        assert_eq!(dec.next_frame(), Err(FrameError::InvalidUtf8));
    }

    #[test]
    fn line_mode_strips_carriage_return() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"STATS\r\nPING\n");
        assert_eq!(dec.next_frame().unwrap().unwrap().text, "STATS");
        assert_eq!(dec.next_frame().unwrap().unwrap().text, "PING");
    }

    #[test]
    fn response_encoding_mirrors_mode() {
        let mut out = Vec::new();
        encode_response(Mode::Binary, "OK epoch=1", &mut out);
        assert_eq!(&out[..4], &(10u32).to_be_bytes());
        assert_eq!(&out[4..], b"OK epoch=1");

        let mut out = Vec::new();
        encode_response(Mode::Line, "multi\nline", &mut out);
        assert_eq!(out, b"multi line\n");
    }
}
