//! Per-connection server telemetry, merged into `segidx_server_*` metric
//! families.
//!
//! Each connection owns an [`ConnStats`] (wait-free atomics + two
//! [`LatencyHistogram`]s). The server keeps weak references to live
//! connections and folds the counters of closed connections into a
//! retired accumulator, so the exported families always cover the full
//! lifetime of the server: `live + retired`.

use segidx_obs::{HistogramSnapshot, LatencyHistogram, Metric, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, Weak};

/// Operations counted in `segidx_server_requests_total{op=…}`, in export
/// order.
pub const OPS: [&str; 12] = [
    "search", "stab", "nearest", "insert", "delete", "record", "as_of", "within", "flush", "ping",
    "stats", "metrics",
];

fn op_index(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1)
}

/// Wait-free counters for one connection.
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Time from frame decode to response enqueued, reads (search / stab /
    /// nearest / admin), nanoseconds.
    pub read_latency: LatencyHistogram,
    /// Time from frame decode to commit callback, writes, nanoseconds.
    pub write_latency: LatencyHistogram,
    requests: [AtomicU64; OPS.len()],
    frames_binary: AtomicU64,
    frames_line: AtomicU64,
    parse_errors: AtomicU64,
    protocol_errors: AtomicU64,
    busy: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl ConnStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request of operation `op` (see [`OPS`]).
    pub fn count_request(&self, op: &str) {
        self.requests[op_index(op)].fetch_add(1, Relaxed);
    }

    /// Counts one decoded frame in `mode`.
    pub fn count_frame(&self, mode: crate::frame::Mode) {
        match mode {
            crate::frame::Mode::Binary => self.frames_binary.fetch_add(1, Relaxed),
            crate::frame::Mode::Line => self.frames_line.fetch_add(1, Relaxed),
        };
    }

    /// Counts one statement the parser rejected.
    pub fn count_parse_error(&self) {
        self.parse_errors.fetch_add(1, Relaxed);
    }

    /// Counts one framing-level error (connection is closed after).
    pub fn count_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Relaxed);
    }

    /// Counts one write rejected with `BUSY` by admission control.
    pub fn count_busy(&self) {
        self.busy.fetch_add(1, Relaxed);
    }

    /// Adds to the inbound byte counter.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Relaxed);
    }

    /// Adds to the outbound byte counter.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Relaxed);
    }
}

/// Scalar + histogram totals folded out of [`ConnStats`].
#[derive(Debug, Default, Clone)]
struct Totals {
    requests: [u64; OPS.len()],
    frames_binary: u64,
    frames_line: u64,
    parse_errors: u64,
    protocol_errors: u64,
    busy: u64,
    bytes_read: u64,
    bytes_written: u64,
    read_latency: HistogramSnapshot,
    write_latency: HistogramSnapshot,
}

impl Totals {
    fn absorb(&mut self, stats: &ConnStats) {
        for (t, c) in self.requests.iter_mut().zip(stats.requests.iter()) {
            *t += c.load(Relaxed);
        }
        self.frames_binary += stats.frames_binary.load(Relaxed);
        self.frames_line += stats.frames_line.load(Relaxed);
        self.parse_errors += stats.parse_errors.load(Relaxed);
        self.protocol_errors += stats.protocol_errors.load(Relaxed);
        self.busy += stats.busy.load(Relaxed);
        self.bytes_read += stats.bytes_read.load(Relaxed);
        self.bytes_written += stats.bytes_written.load(Relaxed);
        self.read_latency.merge(&stats.read_latency.snapshot());
        self.write_latency.merge(&stats.write_latency.snapshot());
    }
}

/// Server-lifetime telemetry: connection registry + retired totals.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections_total: AtomicU64,
    live: Mutex<Vec<Weak<ConnStats>>>,
    retired: Mutex<Totals>,
}

impl ServerStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new connection and returns its stats handle.
    pub fn open_connection(self: &Arc<Self>) -> Arc<ConnStats> {
        self.connections_total.fetch_add(1, Relaxed);
        let stats = Arc::new(ConnStats::new());
        self.live.lock().unwrap().push(Arc::downgrade(&stats));
        stats
    }

    /// Folds a closed connection into the retired totals. The caller must
    /// drop its `Arc<ConnStats>` afterwards (the weak registry entry is
    /// pruned on the next export).
    pub fn close_connection(&self, stats: &Arc<ConnStats>) {
        self.retired.lock().unwrap().absorb(stats);
        let ptr = Arc::as_ptr(stats);
        self.live
            .lock()
            .unwrap()
            .retain(|w| !std::ptr::eq(w.as_ptr(), ptr) && w.strong_count() > 0);
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Relaxed)
    }

    /// Currently open connections.
    pub fn connections_active(&self) -> usize {
        self.live
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// `live + retired` totals across every connection ever opened.
    fn totals(&self) -> Totals {
        let mut t = self.retired.lock().unwrap().clone();
        let live: Vec<Arc<ConnStats>> = self
            .live
            .lock()
            .unwrap()
            .iter()
            .filter_map(Weak::upgrade)
            .collect();
        for stats in &live {
            t.absorb(stats);
        }
        t
    }

    /// One-line human summary for the `STATS` statement.
    pub fn summary_line(&self) -> String {
        let t = self.totals();
        let requests: u64 = t.requests.iter().sum();
        format!(
            "connections={} active={} requests={} busy={} parse_errors={} protocol_errors={} bytes_in={} bytes_out={}",
            self.connections_total(),
            self.connections_active(),
            requests,
            t.busy,
            t.parse_errors,
            t.protocol_errors,
            t.bytes_read,
            t.bytes_written,
        )
    }

    /// Registers the `segidx_server_*` families on `registry`, labeled
    /// `component="server"` (plus any extra labels given).
    pub fn register_metrics(self: &Arc<Self>, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let stats = Arc::clone(self);
        let mut base: Vec<(String, String)> = vec![("component".to_string(), "server".to_string())];
        base.extend(labels.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        registry.register(Box::new(move |out| {
            let l: Vec<(&str, &str)> = base.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let t = stats.totals();
            out.push(Metric::counter(
                "segidx_server_connections_total",
                &l,
                stats.connections_total(),
            ));
            out.push(Metric::gauge(
                "segidx_server_connections_active",
                &l,
                stats.connections_active() as f64,
            ));
            for (op, n) in OPS.iter().zip(t.requests.iter()) {
                let mut with_op = l.clone();
                with_op.push(("op", op));
                out.push(Metric::counter(
                    "segidx_server_requests_total",
                    &with_op,
                    *n,
                ));
            }
            for (mode, n) in [("binary", t.frames_binary), ("line", t.frames_line)] {
                let mut with_mode = l.clone();
                with_mode.push(("mode", mode));
                out.push(Metric::counter("segidx_server_frames_total", &with_mode, n));
            }
            out.push(Metric::counter(
                "segidx_server_parse_errors_total",
                &l,
                t.parse_errors,
            ));
            out.push(Metric::counter(
                "segidx_server_protocol_errors_total",
                &l,
                t.protocol_errors,
            ));
            out.push(Metric::counter("segidx_server_busy_total", &l, t.busy));
            out.push(Metric::counter(
                "segidx_server_bytes_read_total",
                &l,
                t.bytes_read,
            ));
            out.push(Metric::counter(
                "segidx_server_bytes_written_total",
                &l,
                t.bytes_written,
            ));
            out.push(Metric::histogram(
                "segidx_server_read_latency_nanos",
                &l,
                t.read_latency,
            ));
            out.push(Metric::histogram(
                "segidx_server_write_latency_nanos",
                &l,
                t.write_latency,
            ));
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Mode;

    #[test]
    fn retired_connections_keep_counting() {
        let server = Arc::new(ServerStats::new());
        let a = server.open_connection();
        a.count_request("search");
        a.count_request("insert");
        a.count_frame(Mode::Binary);
        a.read_latency.record(1_000);
        server.close_connection(&a);
        drop(a);

        let b = server.open_connection();
        b.count_request("search");
        b.count_frame(Mode::Line);
        b.count_busy();

        let registry = MetricsRegistry::new();
        server.register_metrics(&registry, &[]);
        let snap = registry.snapshot();
        let l = [("component", "server")];
        let with = |extra: (&'static str, &'static str)| -> Vec<(&str, &str)> { vec![l[0], extra] };
        assert_eq!(
            snap.get("segidx_server_requests_total", &with(("op", "search")))
                .unwrap()
                .value,
            segidx_obs::MetricValue::Counter(2),
            "one live + one retired search"
        );
        assert_eq!(
            snap.get("segidx_server_requests_total", &with(("op", "insert")))
                .unwrap()
                .value,
            segidx_obs::MetricValue::Counter(1)
        );
        assert_eq!(
            snap.get("segidx_server_frames_total", &with(("mode", "line")))
                .unwrap()
                .value,
            segidx_obs::MetricValue::Counter(1)
        );
        assert_eq!(
            snap.get("segidx_server_busy_total", &l).unwrap().value,
            segidx_obs::MetricValue::Counter(1)
        );
        assert_eq!(
            snap.get("segidx_server_connections_total", &l)
                .unwrap()
                .value,
            segidx_obs::MetricValue::Counter(2)
        );
        assert_eq!(
            snap.get("segidx_server_connections_active", &l)
                .unwrap()
                .value,
            segidx_obs::MetricValue::Gauge(1.0)
        );
        match &snap
            .get("segidx_server_read_latency_nanos", &l)
            .unwrap()
            .value
        {
            segidx_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(server.summary_line().contains("requests=3"));
    }
}
