//! Recursive-descent parser for the query language.
//!
//! # Grammar
//!
//! ```text
//! statement := insert | delete | search | stab | nearest
//!            | record | asof | within
//!            | "FLUSH" | "PING" | "STATS" | "METRICS"            [";"]
//! insert    := "INSERT" "RECT" point point "ID" integer
//! delete    := "DELETE" "ID" integer "RECT" point point
//! search    := "SEARCH" "WINDOW" point point
//! stab      := "STAB" "POINT" point
//! nearest   := "NEAREST" "POINT" point "K" integer
//! record    := "RECORD" integer "VALUE" number "AT" number
//! asof      := "AS" "OF" number
//! within    := "WITHIN" "(" number "," number ")" "DURATION" number number
//! point     := "(" number { "," number } ")"
//! ```
//!
//! Keywords are case-insensitive; an optional trailing `;` is accepted.
//! Points are dimension-agnostic at parse time (`Vec<f64>`); arity is
//! validated when the statement is executed against a `D`-dimensional
//! index, so the same parser serves every instantiation.

use crate::lexer::{lex, Span, Token, TokenKind};
use std::fmt;

/// A parsed point: one coordinate per dimension.
pub type Point = Vec<f64>;

/// One parsed statement of the query language.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `INSERT RECT (lo…) (hi…) ID n`
    Insert {
        /// Low corner of the rectangle.
        lo: Point,
        /// High corner of the rectangle.
        hi: Point,
        /// Caller-assigned record id.
        id: u64,
    },
    /// `DELETE ID n RECT (lo…) (hi…)`
    Delete {
        /// Record id to delete.
        id: u64,
        /// Low corner the record was inserted with.
        lo: Point,
        /// High corner the record was inserted with.
        hi: Point,
    },
    /// `SEARCH WINDOW (lo…) (hi…)`
    Search {
        /// Low corner of the query window.
        lo: Point,
        /// High corner of the query window.
        hi: Point,
    },
    /// `STAB POINT (p…)`
    Stab {
        /// The stabbing point.
        point: Point,
    },
    /// `NEAREST POINT (p…) K n`
    Nearest {
        /// The query point.
        point: Point,
        /// How many neighbours to return.
        k: usize,
    },
    /// `RECORD k VALUE v AT t` — open a new temporal version of key `k`
    /// (closing its predecessor, paper Figure 1 style).
    Record {
        /// The key whose history is extended.
        key: u64,
        /// The attribute value the new version carries.
        value: f64,
        /// Valid-time start of the new version.
        at: f64,
    },
    /// `AS OF t` — temporal stab: every version valid at time `t`.
    AsOf {
        /// The query timestamp.
        t: f64,
    },
    /// `WITHIN (t1, t2) DURATION lo hi` — versions overlapping the time
    /// window whose lifetime (open versions measured to the horizon)
    /// falls in `[lo, hi]`.
    Within {
        /// Start of the time window.
        t1: f64,
        /// End of the time window.
        t2: f64,
        /// Minimum version duration (inclusive).
        lo: f64,
        /// Maximum version duration (inclusive).
        hi: f64,
    },
    /// `FLUSH` — wait until every submitted write is applied.
    Flush,
    /// `PING` — liveness check.
    Ping,
    /// `STATS` — one-line server counters.
    Stats,
    /// `METRICS` — full metrics registry as JSON.
    Metrics,
}

impl Statement {
    /// Stable lowercase operation name for metrics labels.
    pub fn op_name(&self) -> &'static str {
        match self {
            Statement::Insert { .. } => "insert",
            Statement::Delete { .. } => "delete",
            Statement::Search { .. } => "search",
            Statement::Stab { .. } => "stab",
            Statement::Nearest { .. } => "nearest",
            Statement::Record { .. } => "record",
            Statement::AsOf { .. } => "as_of",
            Statement::Within { .. } => "within",
            Statement::Flush => "flush",
            Statement::Ping => "ping",
            Statement::Stats => "stats",
            Statement::Metrics => "metrics",
        }
    }

    /// Whether this statement mutates the index (or the temporal table).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert { .. } | Statement::Delete { .. } | Statement::Record { .. }
        )
    }
}

fn write_point(f: &mut fmt::Formatter<'_>, p: &[f64]) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in p.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        // `{:?}` prints the shortest representation that round-trips the
        // f64 exactly, which the proptest print→parse test relies on.
        write!(f, "{c:?}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Statement {
    /// Prints the canonical form, which re-parses to an equal statement.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Insert { lo, hi, id } => {
                write!(f, "INSERT RECT ")?;
                write_point(f, lo)?;
                write!(f, " ")?;
                write_point(f, hi)?;
                write!(f, " ID {id}")
            }
            Statement::Delete { id, lo, hi } => {
                write!(f, "DELETE ID {id} RECT ")?;
                write_point(f, lo)?;
                write!(f, " ")?;
                write_point(f, hi)
            }
            Statement::Search { lo, hi } => {
                write!(f, "SEARCH WINDOW ")?;
                write_point(f, lo)?;
                write!(f, " ")?;
                write_point(f, hi)
            }
            Statement::Stab { point } => {
                write!(f, "STAB POINT ")?;
                write_point(f, point)
            }
            Statement::Nearest { point, k } => {
                write!(f, "NEAREST POINT ")?;
                write_point(f, point)?;
                write!(f, " K {k}")
            }
            Statement::Record { key, value, at } => {
                write!(f, "RECORD {key} VALUE {value:?} AT {at:?}")
            }
            Statement::AsOf { t } => write!(f, "AS OF {t:?}"),
            Statement::Within { t1, t2, lo, hi } => {
                write!(f, "WITHIN ({t1:?}, {t2:?}) DURATION {lo:?} {hi:?}")
            }
            Statement::Flush => write!(f, "FLUSH"),
            Statement::Ping => write!(f, "PING"),
            Statement::Stats => write!(f, "STATS"),
            Statement::Metrics => write!(f, "METRICS"),
        }
    }
}

/// A parse (or lex) failure with the byte span it points at.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte range of the offending text (empty span at end-of-input for
    /// truncated statements).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    pos: usize,
    eof: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == kw => Ok(()),
            Some(t) => Err(ParseError {
                span: t.span,
                message: format!("expected `{kw}`, found {}", t.kind.describe()),
            }),
            None => Err(ParseError {
                span: Span::new(self.eof, self.eof),
                message: format!("expected `{kw}`, found end of statement"),
            }),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<&'a Token, ParseError> {
        match self.next() {
            Some(t) if t.kind == *kind => Ok(t),
            Some(t) => Err(ParseError {
                span: t.span,
                message: format!("expected {what}, found {}", t.kind.describe()),
            }),
            None => Err(ParseError {
                span: Span::new(self.eof, self.eof),
                message: format!("expected {what}, found end of statement"),
            }),
        }
    }

    fn number(&mut self, what: &str) -> Result<(f64, Span), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(v),
                span,
            }) => Ok((*v, *span)),
            Some(t) => Err(ParseError {
                span: t.span,
                message: format!("expected {what}, found {}", t.kind.describe()),
            }),
            None => Err(ParseError {
                span: Span::new(self.eof, self.eof),
                message: format!("expected {what}, found end of statement"),
            }),
        }
    }

    fn integer(&mut self, what: &str) -> Result<u64, ParseError> {
        let (v, span) = self.number(what)?;
        // The token value is an f64, which loses precision above 2^53;
        // plain decimal literals re-parse from the raw digits so every
        // u64 id round-trips exactly. Exponent/decimal forms (`1e3`,
        // `5.0`) fall through to the f64 path.
        if let Ok(exact) = self.src[span.start..span.end].parse::<u64>() {
            return Ok(exact);
        }
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(ParseError {
                span,
                message: format!("expected non-negative integer for {what}, found `{v}`"),
            });
        }
        Ok(v as u64)
    }

    /// A number that must be finite (timestamps, values, durations).
    fn finite(&mut self, what: &str) -> Result<f64, ParseError> {
        let (v, span) = self.number(what)?;
        if !v.is_finite() {
            return Err(ParseError {
                span,
                message: format!("{what} must be finite"),
            });
        }
        Ok(v)
    }

    fn point(&mut self) -> Result<Point, ParseError> {
        self.expect_kind(&TokenKind::LParen, "`(`")?;
        let mut coords = Vec::new();
        loop {
            let (v, span) = self.number("coordinate")?;
            if !v.is_finite() {
                return Err(ParseError {
                    span,
                    message: "coordinates must be finite".to_string(),
                });
            }
            coords.push(v);
            match self.next() {
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => continue,
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ParseError {
                        span: t.span,
                        message: format!("expected `,` or `)`, found {}", t.kind.describe()),
                    })
                }
                None => {
                    return Err(ParseError {
                        span: Span::new(self.eof, self.eof),
                        message: "expected `,` or `)`, found end of statement".to_string(),
                    })
                }
            }
        }
        Ok(coords)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let head = match self.next() {
            Some(Token {
                kind: TokenKind::Word(w),
                span,
            }) => (w.as_str(), *span),
            Some(t) => {
                return Err(ParseError {
                    span: t.span,
                    message: format!("expected a statement keyword, found {}", t.kind.describe()),
                })
            }
            None => {
                return Err(ParseError {
                    span: Span::new(0, 0),
                    message: "empty statement".to_string(),
                })
            }
        };
        let stmt = match head.0 {
            "INSERT" => {
                self.expect_word("RECT")?;
                let lo = self.point()?;
                let hi = self.point()?;
                self.expect_word("ID")?;
                let id = self.integer("record id")?;
                Statement::Insert { lo, hi, id }
            }
            "DELETE" => {
                self.expect_word("ID")?;
                let id = self.integer("record id")?;
                self.expect_word("RECT")?;
                let lo = self.point()?;
                let hi = self.point()?;
                Statement::Delete { id, lo, hi }
            }
            "SEARCH" => {
                self.expect_word("WINDOW")?;
                let lo = self.point()?;
                let hi = self.point()?;
                Statement::Search { lo, hi }
            }
            "STAB" => {
                self.expect_word("POINT")?;
                let point = self.point()?;
                Statement::Stab { point }
            }
            "NEAREST" => {
                self.expect_word("POINT")?;
                let point = self.point()?;
                self.expect_word("K")?;
                let k = self.integer("neighbour count")? as usize;
                Statement::Nearest { point, k }
            }
            "RECORD" => {
                let key = self.integer("key")?;
                self.expect_word("VALUE")?;
                let value = self.finite("value")?;
                self.expect_word("AT")?;
                let at = self.finite("timestamp")?;
                Statement::Record { key, value, at }
            }
            "AS" => {
                self.expect_word("OF")?;
                let t = self.finite("timestamp")?;
                Statement::AsOf { t }
            }
            "WITHIN" => {
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let t1 = self.finite("window start")?;
                self.expect_kind(&TokenKind::Comma, "`,`")?;
                let t2 = self.finite("window end")?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                self.expect_word("DURATION")?;
                let lo = self.finite("minimum duration")?;
                let hi = self.finite("maximum duration")?;
                Statement::Within { t1, t2, lo, hi }
            }
            "FLUSH" => Statement::Flush,
            "PING" => Statement::Ping,
            "STATS" => Statement::Stats,
            "METRICS" => Statement::Metrics,
            other => {
                return Err(ParseError {
                    span: head.1,
                    message: format!("unknown statement `{other}`"),
                })
            }
        };
        // Optional trailing semicolon, then end of input.
        if let Some(Token {
            kind: TokenKind::Semi,
            ..
        }) = self.peek()
        {
            self.pos += 1;
        }
        if let Some(t) = self.peek() {
            return Err(ParseError {
                span: t.span,
                message: format!("trailing {} after statement", t.kind.describe()),
            });
        }
        Ok(stmt)
    }
}

/// Parses one statement of the query language.
pub fn parse(text: &str) -> Result<Statement, ParseError> {
    let tokens = lex(text).map_err(|e| ParseError {
        span: e.span,
        message: e.message,
    })?;
    let mut p = Parser {
        src: text,
        tokens: &tokens,
        pos: 0,
        eof: text.len(),
    };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_statement_form_parses() {
        assert_eq!(
            parse("INSERT RECT (1.0, 2.0) (3.0, 4.0) ID 7").unwrap(),
            Statement::Insert {
                lo: vec![1.0, 2.0],
                hi: vec![3.0, 4.0],
                id: 7
            }
        );
        assert_eq!(
            parse("delete id 7 rect (1, 2) (3, 4);").unwrap(),
            Statement::Delete {
                id: 7,
                lo: vec![1.0, 2.0],
                hi: vec![3.0, 4.0]
            }
        );
        assert_eq!(
            parse("SEARCH WINDOW (0,0) (10,10)").unwrap(),
            Statement::Search {
                lo: vec![0.0, 0.0],
                hi: vec![10.0, 10.0]
            }
        );
        assert_eq!(
            parse("STAB POINT (5.5, -2e3)").unwrap(),
            Statement::Stab {
                point: vec![5.5, -2e3]
            }
        );
        assert_eq!(
            parse("NEAREST POINT (1, 1) K 3").unwrap(),
            Statement::Nearest {
                point: vec![1.0, 1.0],
                k: 3
            }
        );
        assert_eq!(parse("FLUSH").unwrap(), Statement::Flush);
        assert_eq!(parse("ping;").unwrap(), Statement::Ping);
        assert_eq!(parse("STATS").unwrap(), Statement::Stats);
        assert_eq!(parse("METRICS").unwrap(), Statement::Metrics);
    }

    #[test]
    fn temporal_statement_forms_parse() {
        assert_eq!(
            parse("RECORD 1 VALUE 30000 AT 1975.0").unwrap(),
            Statement::Record {
                key: 1,
                value: 30_000.0,
                at: 1975.0
            }
        );
        assert_eq!(
            parse("as of 1977.5;").unwrap(),
            Statement::AsOf { t: 1977.5 }
        );
        assert_eq!(
            parse("WITHIN (1975, 1980) DURATION 0 2.5").unwrap(),
            Statement::Within {
                t1: 1975.0,
                t2: 1980.0,
                lo: 0.0,
                hi: 2.5
            }
        );
    }

    #[test]
    fn temporal_error_spans_point_at_the_offending_token() {
        let err = parse("RECORD 1 VALUE 3 BY 5").unwrap_err();
        assert_eq!(err.span, Span::new(17, 19));
        assert!(err.message.contains("expected `AT`"), "{}", err.message);

        let err = parse("AS OF 1e999").unwrap_err();
        assert_eq!(err.span, Span::new(6, 11));
        assert!(err.message.contains("finite"), "{}", err.message);

        let err = parse("WITHIN (1, 2) DURATION 0").unwrap_err();
        assert_eq!(err.span, Span::new(24, 24));
        assert!(err.message.contains("end of statement"), "{}", err.message);
    }

    #[test]
    fn error_spans_point_at_the_offending_token() {
        let err = parse("INSERT RECT (1,2) (3,4) IDX 7").unwrap_err();
        assert_eq!(err.span, Span::new(24, 27));
        assert!(err.message.contains("expected `ID`"), "{}", err.message);

        let err = parse("SEARCH WINDOW (1,2)").unwrap_err();
        assert_eq!(err.span, Span::new(19, 19));
        assert!(err.message.contains("end of statement"), "{}", err.message);

        let err = parse("NEAREST POINT (1,1) K -2").unwrap_err();
        assert_eq!(err.span, Span::new(22, 24));
        assert!(
            err.message.contains("non-negative integer"),
            "{}",
            err.message
        );

        let err = parse("SEARCH WINDOW (1e999, 0) (1, 1)").unwrap_err();
        assert!(err.message.contains("finite"), "{}", err.message);

        let err = parse("BOGUS 1 2 3").unwrap_err();
        assert_eq!(err.span, Span::new(0, 5));
    }

    #[test]
    fn large_u64_ids_keep_full_precision() {
        // Above 2^53 the lexer's f64 token value rounds; the parser must
        // recover the exact id from the raw digits.
        let id = u64::MAX - 1403;
        let stmt = parse(&format!("DELETE ID {id} RECT (0) (1)")).unwrap();
        assert_eq!(
            stmt,
            Statement::Delete {
                id,
                lo: vec![0.0],
                hi: vec![1.0]
            }
        );
        // Non-literal integer forms still go through the f64 path.
        assert_eq!(
            parse("NEAREST POINT (0) K 1e3").unwrap(),
            Statement::Nearest {
                point: vec![0.0],
                k: 1000
            }
        );
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let err = parse("PING PING").unwrap_err();
        assert_eq!(err.span, Span::new(5, 9));
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "INSERT RECT (1.25, -3.5) (2.0, 4.0) ID 42",
            "DELETE ID 9 RECT (0.0, 0.0) (1.0, 1.0)",
            "SEARCH WINDOW (-5.0, -5.0) (5.0, 5.0)",
            "STAB POINT (0.1, 0.2)",
            "NEAREST POINT (7.0, 8.0) K 12",
            "RECORD 3 VALUE 41000.0 AT 1979.5",
            "AS OF 1977.25",
            "WITHIN (1975.0, 1980.0) DURATION 0.5 4.0",
            "FLUSH",
            "PING",
            "STATS",
            "METRICS",
        ] {
            let stmt = parse(text).unwrap();
            let printed = stmt.to_string();
            assert_eq!(parse(&printed).unwrap(), stmt, "via `{printed}`");
        }
    }
}
