//! Hand-rolled lexer for the query language: keywords, numbers and
//! punctuation, each token carrying its byte span for error reporting.

use std::fmt;

/// Half-open byte range into the statement text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the token.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// What a token is.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A bare word (keyword candidate), uppercased for matching.
    Word(String),
    /// A numeric literal (integer or float, optional sign/exponent).
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
}

impl TokenKind {
    /// Short human name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("word `{w}`"),
            TokenKind::Number(_) => "number".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
        }
    }
}

/// One lexed token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The classified token.
    pub kind: TokenKind,
    /// Where it sits in the statement text.
    pub span: Span,
}

/// A lex-level failure (unexpected byte, malformed number).
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// The offending bytes.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

/// Lexes a whole statement into tokens. Whitespace separates tokens and
/// is otherwise insignificant.
pub fn lex(text: &str) -> Result<Vec<Token>, LexError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'+' | b'-' | b'.' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    // `+`/`-` continue a number only right after an exponent
                    // marker; otherwise they would swallow the next token.
                    if matches!(bytes[i], b'+' | b'-') && !matches!(bytes[i - 1], b'e' | b'E') {
                        break;
                    }
                    i += 1;
                }
                let raw = &text[start..i];
                let value: f64 = raw.parse().map_err(|_| LexError {
                    span: Span::new(start, i),
                    message: format!("malformed number `{raw}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    span: Span::new(start, i),
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word(text[start..i].to_ascii_uppercase()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Report the whole (possibly multi-byte) char, not one byte.
                let ch_len = text[i..].chars().next().map_or(1, char::len_utf8);
                return Err(LexError {
                    span: Span::new(i, i + ch_len),
                    message: format!("unexpected character `{}`", &text[i..i + ch_len]),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive_and_spanned() {
        let toks = lex("insert Rect (1.0, 2.0)").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Word("INSERT".into()));
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(toks[1].kind, TokenKind::Word("RECT".into()));
        assert_eq!(toks[2].kind, TokenKind::LParen);
        assert_eq!(toks[3].kind, TokenKind::Number(1.0));
        assert_eq!(toks[3].span, Span::new(13, 16));
    }

    #[test]
    fn numbers_cover_signs_and_exponents() {
        let toks = lex("-1.5 +2 3e-4 .25").unwrap();
        let vals: Vec<f64> = toks
            .iter()
            .map(|t| match t.kind {
                TokenKind::Number(v) => v,
                _ => panic!("expected number"),
            })
            .collect();
        assert_eq!(vals, vec![-1.5, 2.0, 3e-4, 0.25]);
    }

    #[test]
    fn minus_after_digits_does_not_extend_the_number() {
        // `1-2` is two numbers (no infix operators in this grammar).
        let toks = lex("1-2").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Number(1.0));
        assert_eq!(toks[1].kind, TokenKind::Number(-2.0));
    }

    #[test]
    fn bad_bytes_are_rejected_with_spans() {
        let err = lex("SEARCH @ WINDOW").unwrap_err();
        assert_eq!(err.span, Span::new(7, 8));
        let err = lex("PING é").unwrap_err();
        assert_eq!(err.span, Span::new(5, 7));
    }
}
