//! The server binary: bind, print `READY <addr>`, serve until killed.
//!
//! ```text
//! segidx_server [--addr HOST:PORT] [--shards N] [--queue-capacity N]
//!               [--max-frame BYTES] [--trace-sample N]
//! ```
//!
//! `READY <addr>` on stdout (flushed) is the machine-readable signal CI
//! scripts wait for before pointing `loadgen` at the port.

use segidx_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: segidx_server [--addr HOST:PORT] [--shards N] \
         [--queue-capacity N] [--max-frame BYTES] [--trace-sample N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        let parsed = match flag.as_str() {
            "--addr" => {
                config.addr = value;
                Ok(())
            }
            "--shards" => value.parse().map(|v| config.backend.shards = v),
            "--queue-capacity" => value.parse().map(|v| config.backend.queue_capacity = v),
            "--max-frame" => value.parse().map(|v| config.max_frame = v),
            "--trace-sample" => value.parse().map(|v| config.trace_sample = v),
            _ => return usage(),
        };
        if parsed.is_err() {
            return usage();
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("segidx_server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Serve until the process is killed (CI tears the job down; a real
    // deployment would layer SIGTERM handling here).
    loop {
        std::thread::park();
    }
}
