//! Socket-level load generator for `segidx_server`.
//!
//! Drives a mixed read/write workload over real TCP connections with
//! pipelined binary frames, measures sustained QPS and client-observed
//! latency percentiles, then **verifies** the server: every committed
//! write (a pipelined `INSERT`/`DELETE` answered `OK`) is replayed into a
//! serial model, and a seeded set of `SEARCH`/`STAB` queries must come
//! back bit-identical to what the model computes. `BUSY` rejections are
//! admission control, not errors — they are counted and excluded from the
//! model, exactly mirroring what the server refused to apply.
//!
//! ```text
//! loadgen [--addr HOST:PORT]      target a running server (default:
//!                                 self-host one in-process on a free port)
//!         [--connections N]       concurrent client connections (4)
//!         [--pipeline N]          in-flight frames per connection (256)
//!         [--ops N]               measured statements per connection (100000)
//!         [--preload N]           warm-up inserts per connection (2000)
//!         [--seed N]              workload seed (1)
//!         [--shards N]            self-hosted server shard count (1;
//!                                 scatter/gather only pays off with
//!                                 more cores than shards)
//!         [--out PATH]            results JSON (results/BENCH_server.json)
//!         [--metrics-out PATH]    save the server's METRICS snapshot
//!         [--check]               gate on floors/ceilings (CI mode)
//!         [--min-qps N]           --check: sustained QPS floor (50000)
//!         [--max-p99-ms N]        --check: read+write p99 ceiling (50)
//! ```
//!
//! `--check` fails (exit 1) on: a protocol error, a verification
//! mismatch, QPS under the floor, or p99 over the ceiling.

use segidx_geom::{Point, Rect};
use segidx_obs::json::Value;
use segidx_obs::{HistogramSnapshot, LatencyHistogram};
use segidx_server::{encode_request, FrameDecoder, Mode, Server, ServerConfig};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

const DIMS: usize = segidx_server::DIMS;

/// Coordinate domain the workload draws from; matches the self-hosted
/// server's default routing domain so sharding spreads evenly.
const DOMAIN: [f64; 2] = [1_000_000.0, 1_000_000.0];

struct Args {
    addr: Option<String>,
    connections: usize,
    pipeline: usize,
    ops: usize,
    preload: usize,
    seed: u64,
    shards: usize,
    out: String,
    metrics_out: Option<String>,
    check: bool,
    min_qps: f64,
    max_p99_ms: f64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            connections: 4,
            pipeline: 256,
            ops: 100_000,
            preload: 2_000,
            seed: 1,
            shards: 1,
            out: "results/BENCH_server.json".to_string(),
            metrics_out: None,
            check: false,
            min_qps: 50_000.0,
            max_p99_ms: 50.0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        if flag == "--check" {
            args.check = true;
            continue;
        }
        let value = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--addr" => args.addr = Some(value),
            "--connections" => args.connections = value.parse().map_err(|e| bad(&e))?,
            "--pipeline" => args.pipeline = value.parse().map_err(|e| bad(&e))?,
            "--ops" => args.ops = value.parse().map_err(|e| bad(&e))?,
            "--preload" => args.preload = value.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = value.parse().map_err(|e| bad(&e))?,
            "--shards" => args.shards = value.parse().map_err(|e| bad(&e))?,
            "--out" => args.out = value,
            "--metrics-out" => args.metrics_out = Some(value),
            "--min-qps" => args.min_qps = value.parse().map_err(|e| bad(&e))?,
            "--max-p99-ms" => args.max_p99_ms = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.connections == 0 || args.pipeline == 0 {
        return Err("--connections and --pipeline must be positive".into());
    }
    Ok(args)
}

/// xorshift64*: deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_rect(rng: &mut Rng, max_extent: f64) -> Rect<DIMS> {
    let mut lo = [0.0; DIMS];
    let mut hi = [0.0; DIMS];
    for d in 0..DIMS {
        let center = rng.f64() * DOMAIN[d];
        let half = rng.f64() * max_extent / 2.0;
        lo[d] = (center - half).max(0.0);
        hi[d] = (center + half).min(DOMAIN[d]);
    }
    Rect::new(lo, hi)
}

fn random_point(rng: &mut Rng) -> Point<DIMS> {
    Point::new([rng.f64() * DOMAIN[0], rng.f64() * DOMAIN[1]])
}

fn fmt_rect(r: &Rect<DIMS>) -> String {
    let (lo, hi) = (r.lo_coords(), r.hi_coords());
    format!("({:?}, {:?}) ({:?}, {:?})", lo[0], lo[1], hi[0], hi[1])
}

/// What one pipelined statement was, so its response can be classified.
enum Sent {
    Insert { id: u64, rect: Rect<DIMS> },
    Delete { id: u64 },
    Read,
    Flush,
}

/// Per-connection outcome handed back to the coordinator.
struct ConnResult {
    /// Final committed state: id -> rect for every OK'd insert minus
    /// every OK'd delete, applied in pipeline order.
    committed: HashMap<u64, Rect<DIMS>>,
    read_latency: HistogramSnapshot,
    write_latency: HistogramSnapshot,
    ops_done: u64,
    busy: u64,
    errors: Vec<String>,
    started: Instant,
    finished: Instant,
}

/// A sliding-window pipelined client: keeps up to `pipeline` frames in
/// flight, classifies each in-order response against what was sent, and
/// maintains the committed-write model as OKs arrive.
struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    inbuf: Vec<u8>,
    inflight: std::collections::VecDeque<(Sent, Instant)>,
    committed: HashMap<u64, Rect<DIMS>>,
    /// Ids confirmed live (committed, not yet targeted by a delete) —
    /// the pool deletes draw from.
    live: Vec<u64>,
    read_latency: LatencyHistogram,
    write_latency: LatencyHistogram,
    busy: u64,
    errors: Vec<String>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::with_capacity(64 * 1024),
            inbuf: vec![0u8; 64 * 1024],
            inflight: std::collections::VecDeque::new(),
            committed: HashMap::new(),
            live: Vec::new(),
            read_latency: LatencyHistogram::default(),
            write_latency: LatencyHistogram::default(),
            busy: 0,
            errors: Vec::new(),
        })
    }

    fn send(&mut self, sent: Sent, text: &str) {
        encode_request(text, &mut self.outbuf);
        self.inflight.push_back((sent, Instant::now()));
    }

    fn flush_socket(&mut self) -> std::io::Result<()> {
        if !self.outbuf.is_empty() {
            self.stream.write_all(&self.outbuf)?;
            self.outbuf.clear();
        }
        Ok(())
    }

    /// Blocks until at least one response arrives, processing everything
    /// decodable. Returns how many responses were consumed.
    fn pump(&mut self) -> std::io::Result<usize> {
        self.flush_socket()?;
        let mut consumed = self.drain_decoded()?;
        while consumed == 0 {
            let n = self.stream.read(&mut self.inbuf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-pipeline",
                ));
            }
            let chunk = self.inbuf[..n].to_vec();
            self.decoder.feed(&chunk);
            consumed = self.drain_decoded()?;
        }
        Ok(consumed)
    }

    fn drain_decoded(&mut self) -> std::io::Result<usize> {
        let mut consumed = 0;
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    self.on_response(&frame.text, frame.mode);
                    consumed += 1;
                }
                Ok(None) => return Ok(consumed),
                Err(e) => {
                    self.errors.push(format!("frame decode: {e}"));
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "x"));
                }
            }
        }
    }

    fn on_response(&mut self, text: &str, mode: Mode) {
        let Some((sent, t0)) = self.inflight.pop_front() else {
            self.errors.push(format!("unsolicited response: {text}"));
            return;
        };
        if mode != Mode::Binary {
            self.errors
                .push(format!("response in wrong framing mode: {text}"));
        }
        let elapsed = t0.elapsed();
        match sent {
            Sent::Insert { id, rect } => {
                self.write_latency.record_duration(elapsed);
                if text.starts_with("OK epoch=") {
                    self.committed.insert(id, rect);
                    self.live.push(id);
                } else if text.starts_with("BUSY") {
                    self.busy += 1;
                } else {
                    self.errors.push(format!("insert {id}: {text}"));
                }
            }
            Sent::Delete { id } => {
                self.write_latency.record_duration(elapsed);
                if text.starts_with("OK epoch=") {
                    self.committed.remove(&id);
                } else if text.starts_with("BUSY") {
                    // Refused: the record stays live; put it back in the pool.
                    self.busy += 1;
                    self.live.push(id);
                } else {
                    self.errors.push(format!("delete {id}: {text}"));
                }
            }
            Sent::Read => {
                self.read_latency.record_duration(elapsed);
                if !(text.starts_with("ROWS ") || text.starts_with("NEAR ")) {
                    self.errors.push(format!("read: {text}"));
                }
            }
            Sent::Flush => {
                if !text.starts_with("OK epoch=") {
                    self.errors.push(format!("flush: {text}"));
                }
            }
        }
    }

    /// Drains every in-flight response.
    fn drain_all(&mut self) -> std::io::Result<()> {
        while !self.inflight.is_empty() {
            self.pump()?;
        }
        Ok(())
    }
}

/// Runs one connection's workload: preload, flush, measured mixed phase.
fn run_connection(addr: &str, conn_id: usize, args: &Args) -> Result<ConnResult, String> {
    let fail = |e: std::io::Error| format!("connection {conn_id}: {e}");
    let mut client = Client::connect(addr).map_err(fail)?;
    let mut rng = Rng::new(args.seed ^ ((conn_id as u64 + 1) << 32));
    // Connection-disjoint id space: ids never collide across connections,
    // so the union of per-connection committed maps is the index state.
    let id_base = (conn_id as u64 + 1) << 40;
    let mut next_id = id_base;

    // Preload: a confirmed-live pool so the measured phase can delete
    // from the first statement.
    for _ in 0..args.preload {
        if client.inflight.len() >= args.pipeline {
            client.pump().map_err(fail)?;
        }
        let rect = random_rect(&mut rng, 200.0);
        let id = next_id;
        next_id += 1;
        client.send(
            Sent::Insert { id, rect },
            &format!("INSERT RECT {} ID {id}", fmt_rect(&rect)),
        );
    }
    client.send(Sent::Flush, "FLUSH");
    client.drain_all().map_err(fail)?;

    // Measured phase: 40% search, 20% stab, 5% nearest, 20% insert,
    // 15% delete.
    let started = Instant::now();
    let mut text = String::with_capacity(128);
    for _ in 0..args.ops {
        if client.inflight.len() >= args.pipeline {
            client.pump().map_err(fail)?;
        }
        text.clear();
        let roll = rng.next() % 100;
        let sent = if roll < 40 {
            let w = random_rect(&mut rng, 500.0);
            text.push_str(&format!("SEARCH WINDOW {}", fmt_rect(&w)));
            Sent::Read
        } else if roll < 60 {
            let p = random_point(&mut rng);
            let c = p.coords();
            text.push_str(&format!("STAB POINT ({:?}, {:?})", c[0], c[1]));
            Sent::Read
        } else if roll < 65 {
            let p = random_point(&mut rng);
            let c = p.coords();
            text.push_str(&format!("NEAREST POINT ({:?}, {:?}) K 4", c[0], c[1]));
            Sent::Read
        } else if roll < 85 || client.live.is_empty() {
            let rect = random_rect(&mut rng, 200.0);
            let id = next_id;
            next_id += 1;
            text.push_str(&format!("INSERT RECT {} ID {id}", fmt_rect(&rect)));
            Sent::Insert { id, rect }
        } else {
            let slot = rng.below(client.live.len());
            let id = client.live.swap_remove(slot);
            // The rect it was committed with; deletes always target a
            // record the model knows is live.
            let rect = client.committed[&id];
            text.push_str(&format!("DELETE ID {id} RECT {}", fmt_rect(&rect)));
            Sent::Delete { id }
        };
        client.send(sent, &text);
    }
    client.drain_all().map_err(fail)?;
    let finished = Instant::now();

    Ok(ConnResult {
        committed: client.committed,
        read_latency: client.read_latency.snapshot(),
        write_latency: client.write_latency.snapshot(),
        ops_done: args.ops as u64,
        busy: client.busy,
        errors: client.errors,
        started,
        finished,
    })
}

/// Replays the committed union into sorted form and checks a seeded query
/// set bit-for-bit against the live server. Returns (queries, mismatches).
fn verify(
    addr: &str,
    model: &HashMap<u64, Rect<DIMS>>,
    seed: u64,
) -> Result<(usize, Vec<String>), String> {
    let fail = |e: std::io::Error| format!("verify connection: {e}");
    let mut client = Client::connect(addr).map_err(fail)?;
    client.send(Sent::Flush, "FLUSH");
    client.drain_all().map_err(fail)?;

    // Deterministic scan order for the model.
    let mut entries: Vec<(u64, Rect<DIMS>)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable_by_key(|(id, _)| *id);

    let expect_rows = |ids: Vec<u64>| {
        let mut out = format!("ROWS {}", ids.len());
        for id in ids {
            out.push(' ');
            out.push_str(&id.to_string());
        }
        out
    };

    let mut rng = Rng::new(seed ^ 0xdead_beef);
    let mut queries = Vec::new();
    for _ in 0..256 {
        let w = random_rect(&mut rng, 2_000.0);
        let expected = expect_rows(
            entries
                .iter()
                .filter(|(_, r)| r.intersects(&w))
                .map(|(id, _)| *id)
                .collect(),
        );
        queries.push((format!("SEARCH WINDOW {}", fmt_rect(&w)), expected));

        let p = random_point(&mut rng);
        let c = p.coords();
        let expected = expect_rows(
            entries
                .iter()
                .filter(|(_, r)| r.contains_point(&p))
                .map(|(id, _)| *id)
                .collect(),
        );
        queries.push((format!("STAB POINT ({:?}, {:?})", c[0], c[1]), expected));
    }

    let mut mismatches = Vec::new();
    for (query, expected) in &queries {
        let mut out = Vec::new();
        encode_request(query, &mut out);
        client.stream.write_all(&out).map_err(fail)?;
        let reply = loop {
            match client.decoder.next_frame() {
                Ok(Some(f)) => break f.text,
                Ok(None) => {
                    let n = client.stream.read(&mut client.inbuf).map_err(fail)?;
                    if n == 0 {
                        return Err("verify: server closed".into());
                    }
                    let chunk = client.inbuf[..n].to_vec();
                    client.decoder.feed(&chunk);
                }
                Err(e) => return Err(format!("verify: frame decode: {e}")),
            }
        };
        if &reply != expected {
            mismatches.push(format!(
                "`{query}`: server `{}…` != model `{}…`",
                &reply[..reply.len().min(80)],
                &expected[..expected.len().min(80)]
            ));
        }
    }
    Ok((queries.len(), mismatches))
}

/// Fetches the server's METRICS snapshot (raw JSON text).
fn fetch_metrics(addr: &str) -> Result<String, String> {
    let fail = |e: std::io::Error| format!("metrics connection: {e}");
    let mut stream = TcpStream::connect(addr).map_err(fail)?;
    let mut out = Vec::new();
    encode_request("METRICS", &mut out);
    stream.write_all(&out).map_err(fail)?;
    let mut decoder = FrameDecoder::with_max_frame(16 << 20);
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match decoder.next_frame() {
            Ok(Some(f)) => return Ok(f.text),
            Ok(None) => {
                let n = stream.read(&mut buf).map_err(fail)?;
                if n == 0 {
                    return Err("metrics: server closed".into());
                }
                decoder.feed(&buf[..n]);
            }
            Err(e) => return Err(format!("metrics: frame decode: {e}")),
        }
    }
}

fn hist_json(h: &HistogramSnapshot) -> Value {
    let opt = |v: Option<u64>| match v {
        Some(v) => Value::Int(v as i64),
        None => Value::Null,
    };
    Value::Object(vec![
        ("count".into(), Value::Int(h.count as i64)),
        ("p50_nanos".into(), opt(h.p50())),
        ("p95_nanos".into(), opt(h.p95())),
        ("p99_nanos".into(), opt(h.p99())),
        ("max_nanos".into(), Value::Int(h.max as i64)),
    ])
}

fn write_out(path: &str, value: &Value) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(path, value.render()).expect("write results");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    // Self-host unless pointed at a live server. The self-hosted server
    // still goes through real TCP sockets — same code path CI smokes.
    let hosted = if args.addr.is_none() {
        let config = ServerConfig {
            backend: segidx_server::BackendConfig {
                shards: args.shards,
                ..Default::default()
            },
            ..ServerConfig::default()
        };
        match Server::start(config) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("loadgen: self-host failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match (&args.addr, &hosted) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    eprintln!(
        "loadgen: driving {addr} with {} connections x {} ops (pipeline {})",
        args.connections, args.ops, args.pipeline
    );

    // Fan the connections out, one thread each.
    let results: Vec<Result<ConnResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|conn_id| {
                let addr = addr.as_str();
                let args = &args;
                scope.spawn(move || run_connection(addr, conn_id, args))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut conns = Vec::new();
    for r in results {
        match r {
            Ok(c) => conns.push(c),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Aggregate.
    let started = conns.iter().map(|c| c.started).min().unwrap();
    let finished = conns.iter().map(|c| c.finished).max().unwrap();
    let duration = finished.duration_since(started);
    let total_ops: u64 = conns.iter().map(|c| c.ops_done).sum();
    let busy: u64 = conns.iter().map(|c| c.busy).sum();
    let qps = total_ops as f64 / duration.as_secs_f64();
    let mut read_latency = HistogramSnapshot::default();
    let mut write_latency = HistogramSnapshot::default();
    let mut protocol_errors: Vec<String> = Vec::new();
    let mut model: HashMap<u64, Rect<DIMS>> = HashMap::new();
    for c in &conns {
        read_latency.merge(&c.read_latency);
        write_latency.merge(&c.write_latency);
        protocol_errors.extend(c.errors.iter().cloned());
        model.extend(c.committed.iter().map(|(k, v)| (*k, *v)));
    }

    // Differential verification against the committed-prefix model.
    let (verify_queries, mismatches) = match verify(&addr, &model, args.seed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.metrics_out {
        match fetch_metrics(&addr) {
            Ok(json) => {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    std::fs::create_dir_all(dir).expect("create output dir");
                }
                std::fs::write(path, json).expect("write metrics");
                eprintln!("loadgen: wrote server metrics to {path}");
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let p99_ms = |h: &HistogramSnapshot| h.p99().unwrap_or(0) as f64 / 1e6;
    let worst_p99_ms = p99_ms(&read_latency).max(p99_ms(&write_latency));
    let verified = mismatches.is_empty();
    let qps_ok = qps >= args.min_qps;
    let p99_ok = worst_p99_ms <= args.max_p99_ms;
    let clean = protocol_errors.is_empty();
    let passed = verified && clean && (!args.check || (qps_ok && p99_ok));

    let result = Value::Object(vec![
        (
            "config".into(),
            Value::Object(vec![
                ("addr".into(), Value::Str(addr.clone())),
                ("self_hosted".into(), Value::Bool(hosted.is_some())),
                ("shards".into(), Value::Int(args.shards as i64)),
                ("connections".into(), Value::Int(args.connections as i64)),
                ("pipeline".into(), Value::Int(args.pipeline as i64)),
                ("ops_per_connection".into(), Value::Int(args.ops as i64)),
                (
                    "preload_per_connection".into(),
                    Value::Int(args.preload as i64),
                ),
                ("seed".into(), Value::Int(args.seed as i64)),
            ]),
        ),
        ("duration_secs".into(), Value::Float(duration.as_secs_f64())),
        ("total_ops".into(), Value::Int(total_ops as i64)),
        ("sustained_qps".into(), Value::Float(qps)),
        ("busy_rejections".into(), Value::Int(busy as i64)),
        (
            "protocol_errors".into(),
            Value::Int(protocol_errors.len() as i64),
        ),
        ("read_latency".into(), hist_json(&read_latency)),
        ("write_latency".into(), hist_json(&write_latency)),
        (
            "verify".into(),
            Value::Object(vec![
                ("queries".into(), Value::Int(verify_queries as i64)),
                ("committed_records".into(), Value::Int(model.len() as i64)),
                ("mismatches".into(), Value::Int(mismatches.len() as i64)),
                ("passed".into(), Value::Bool(verified)),
            ]),
        ),
        (
            "check".into(),
            Value::Object(vec![
                ("enabled".into(), Value::Bool(args.check)),
                ("min_qps".into(), Value::Float(args.min_qps)),
                ("max_p99_ms".into(), Value::Float(args.max_p99_ms)),
                ("worst_p99_ms".into(), Value::Float(worst_p99_ms)),
                ("passed".into(), Value::Bool(passed)),
            ]),
        ),
        (
            "hardware_note".into(),
            Value::Str(
                "QPS and tail latency depend on the runner; CI floors are set \
                 for the shared runner, not peak hardware"
                    .into(),
            ),
        ),
    ]);
    write_out(&args.out, &result);

    eprintln!(
        "loadgen: {total_ops} ops in {:.2}s = {qps:.0} QPS | read p50/p99 {}us/{}us | \
         write p50/p99 {}us/{}us | busy {busy} | verify {}/{} matched",
        duration.as_secs_f64(),
        read_latency.p50().unwrap_or(0) / 1_000,
        read_latency.p99().unwrap_or(0) / 1_000,
        write_latency.p50().unwrap_or(0) / 1_000,
        write_latency.p99().unwrap_or(0) / 1_000,
        verify_queries - mismatches.len(),
        verify_queries,
    );
    for e in protocol_errors.iter().take(5) {
        eprintln!("loadgen: protocol error: {e}");
    }
    for m in mismatches.iter().take(5) {
        eprintln!("loadgen: verify mismatch: {m}");
    }
    if args.check {
        if !qps_ok {
            eprintln!(
                "loadgen: CHECK FAILED: {qps:.0} QPS under the {:.0} floor",
                args.min_qps
            );
        }
        if !p99_ok {
            eprintln!(
                "loadgen: CHECK FAILED: p99 {worst_p99_ms:.2}ms over the {:.1}ms ceiling",
                args.max_p99_ms
            );
        }
    }
    if !clean {
        eprintln!(
            "loadgen: CHECK FAILED: {} protocol errors",
            protocol_errors.len()
        );
    }
    if !verified {
        eprintln!(
            "loadgen: CHECK FAILED: {} verify mismatches",
            mismatches.len()
        );
    }
    eprintln!("loadgen: wrote {}", args.out);

    if let Some(s) = hosted {
        s.shutdown();
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
