//! Per-connection machinery: a reader thread that decodes, parses, and
//! executes pipelined frames, and a flusher thread that writes responses
//! back in request order.
//!
//! # Why no thread parks per in-flight write
//!
//! Writes are submitted in batches ([`Backend::submit_batch`]) and their
//! responses are produced by `CommitTicket::on_complete` callbacks that
//! run on the index writer thread. The reader thread never blocks on a
//! commit: it reserves an ordered response slot in the [`Outbox`] and
//! moves on to the next frame. The flusher wakes only when the *next*
//! response in order is ready, packs every contiguous ready response into
//! one socket write, and sleeps again — so a connection with hundreds of
//! in-flight writes costs two parked threads total, not one per write.
//!
//! Backpressure is two-layered: the submission queue rejects writes with
//! `BUSY depth=…` when the writer is behind (admission control), and the
//! outbox caps reserved-but-unflushed responses, suspending the reader —
//! which stops draining the socket and lets TCP push back on the client.

use crate::backend::DIMS;
use crate::frame::{encode_response, FrameDecoder, Mode};
use crate::parser::{parse, Statement};
use crate::server::Shared;
use crate::telemetry::ConnStats;
use segidx_concurrent::{IndexOp, SubmitError};
use segidx_core::RecordId;
use segidx_geom::{Interval, Point, Rect};
use segidx_obs::OpClass;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cap on reserved-but-unflushed responses per connection. Hitting it
/// suspends the reader (TCP backpressure), it does not drop anything.
const OUTBOX_CAPACITY: usize = 64 * 1024;

/// Ordered response slots shared by the reader, the flusher, and commit
/// callbacks. `reserve` hands out sequence numbers in request order;
/// `fill` may complete them in any order; the flusher only ever sends the
/// contiguous filled prefix.
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
    /// Signals the flusher: front slot filled, closed, or aborted.
    ready: Condvar,
    /// Signals the reader: capacity freed.
    space: Condvar,
}

struct OutboxInner {
    slots: VecDeque<Option<Vec<u8>>>,
    /// Sequence number of `slots[0]`.
    base: u64,
    /// Next sequence number to hand out.
    next: u64,
    /// No more reservations will arrive (reader is done).
    closed: bool,
    /// Socket is dead; discard instead of buffering.
    aborted: bool,
}

impl Outbox {
    fn new() -> Self {
        Self {
            inner: Mutex::new(OutboxInner {
                slots: VecDeque::new(),
                base: 0,
                next: 0,
                closed: false,
                aborted: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Reserves the next in-order response slot, blocking while the
    /// outbox is at capacity.
    fn reserve(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        while g.slots.len() >= OUTBOX_CAPACITY && !g.aborted {
            g = self.space.wait(g).unwrap();
        }
        g.slots.push_back(None);
        let seq = g.next;
        g.next += 1;
        seq
    }

    /// Completes slot `seq`. Safe from any thread, in any order.
    fn fill(&self, seq: u64, bytes: Vec<u8>) {
        let mut g = self.inner.lock().unwrap();
        if g.aborted {
            return;
        }
        let idx = (seq - g.base) as usize;
        g.slots[idx] = Some(bytes);
        if idx == 0 {
            self.ready.notify_one();
        }
    }

    /// Marks that no further reservations will be made; the flusher exits
    /// once everything reserved has been filled and sent.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_one();
    }

    /// Drops all pending output (socket died) and unblocks both sides.
    fn abort(&self) {
        let mut g = self.inner.lock().unwrap();
        g.aborted = true;
        g.slots.clear();
        self.ready.notify_one();
        self.space.notify_all();
    }

    /// Blocks until at least one in-order response is ready, then returns
    /// the whole contiguous ready prefix as one buffer. `None` means the
    /// connection is finished (closed and drained, or aborted).
    fn next_chunk(&self) -> Option<Vec<u8>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.aborted {
                return None;
            }
            if matches!(g.slots.front(), Some(Some(_))) {
                let mut buf = Vec::new();
                while matches!(g.slots.front(), Some(Some(_))) {
                    let bytes = g.slots.pop_front().unwrap().unwrap();
                    g.base += 1;
                    buf.extend_from_slice(&bytes);
                }
                self.space.notify_all();
                return Some(buf);
            }
            if g.closed && g.slots.is_empty() {
                return None;
            }
            g = self.ready.wait(g).unwrap();
        }
    }
}

/// A statement validated against the index dimensionality, ready to
/// execute (or an error response ready to send).
enum Prepared {
    Search(Rect<DIMS>),
    Stab(Point<DIMS>),
    Write(IndexOp<DIMS>),
    Nearest(Point<DIMS>, usize),
    Record {
        key: u64,
        value: f64,
        at: f64,
    },
    AsOf(f64),
    Within {
        t1: f64,
        t2: f64,
        lo: f64,
        hi: f64,
    },
    Flush,
    Stats,
    Metrics,
    /// Response already decided: PONG, parse errors, validation errors.
    Reply(String),
}

struct Pending {
    seq: u64,
    mode: Mode,
    t0: Instant,
    prepared: Prepared,
}

fn point2(p: &[f64]) -> Result<Point<DIMS>, String> {
    if p.len() != DIMS {
        return Err(format!("expected {DIMS} coordinates, got {}", p.len()));
    }
    Ok(Point::new([p[0], p[1]]))
}

fn rect2(lo: &[f64], hi: &[f64]) -> Result<Rect<DIMS>, String> {
    let lo = point2(lo)?;
    let hi = point2(hi)?;
    Rect::checked(*lo.coords(), *hi.coords())
        .ok_or_else(|| "invalid rectangle: each lo must be <= the matching hi".to_string())
}

fn prepare(text: &str, stats: &ConnStats) -> Prepared {
    let stmt = match parse(text) {
        Ok(s) => s,
        Err(e) => {
            stats.count_parse_error();
            return Prepared::Reply(format!("ERR parse {e}"));
        }
    };
    stats.count_request(stmt.op_name());
    let validated = match stmt {
        Statement::Insert { lo, hi, id } => rect2(&lo, &hi).map(|rect| {
            Prepared::Write(IndexOp::Insert {
                rect,
                record: RecordId(id),
            })
        }),
        Statement::Delete { id, lo, hi } => rect2(&lo, &hi).map(|rect| {
            Prepared::Write(IndexOp::Delete {
                rect,
                record: RecordId(id),
            })
        }),
        Statement::Search { lo, hi } => rect2(&lo, &hi).map(Prepared::Search),
        Statement::Stab { point } => point2(&point).map(Prepared::Stab),
        Statement::Nearest { point, k } => point2(&point).map(|p| Prepared::Nearest(p, k)),
        Statement::Record { key, value, at } => Ok(Prepared::Record { key, value, at }),
        Statement::AsOf { t } => Ok(Prepared::AsOf(t)),
        Statement::Within { t1, t2, lo, hi } => {
            if t2 < t1 {
                Err(format!("invalid time window: {t1} > {t2}"))
            } else if hi < lo {
                Err(format!("invalid duration band: {lo} > {hi}"))
            } else {
                Ok(Prepared::Within { t1, t2, lo, hi })
            }
        }
        Statement::Flush => Ok(Prepared::Flush),
        Statement::Ping => Ok(Prepared::Reply("PONG".to_string())),
        Statement::Stats => Ok(Prepared::Stats),
        Statement::Metrics => Ok(Prepared::Metrics),
    };
    validated.unwrap_or_else(|msg| Prepared::Reply(format!("ERR exec {msg}")))
}

/// `ROWS <n> <id>…` with ids sorted ascending, so responses depend only
/// on index *contents*, never on tree shape — the property the load
/// generator's serial model replay checks bit-for-bit.
fn rows_response(mut ids: Vec<RecordId>) -> String {
    ids.sort_unstable_by_key(|r| r.0);
    let mut out = format!("ROWS {}", ids.len());
    for id in ids {
        out.push(' ');
        out.push_str(&id.0.to_string());
    }
    out
}

/// `VERS <n> <id>:<key>=<value>…` with versions sorted by id — like
/// [`rows_response`], the reply depends only on table contents, never on
/// the backing tier layout.
fn vers_response(
    mut versions: Vec<(segidx_temporal::VersionId, segidx_temporal::Version)>,
) -> String {
    versions.sort_unstable_by_key(|(id, _)| id.0);
    let mut out = format!("VERS {}", versions.len());
    for (id, v) in versions {
        out.push(' ');
        out.push_str(&format!("{}:{}={:?}", id.0, v.key, v.value));
    }
    out
}

fn fill_reply(outbox: &Outbox, seq: u64, mode: Mode, text: &str) {
    let mut buf = Vec::new();
    encode_response(mode, text, &mut buf);
    outbox.fill(seq, buf);
}

/// Executes one batch of decoded frames. Consecutive searches, stabs, and
/// writes are executed as single batched calls into the index.
fn execute_batch(
    shared: &Shared,
    stats: &Arc<ConnStats>,
    outbox: &Arc<Outbox>,
    items: Vec<Pending>,
) {
    let mut i = 0;
    while i < items.len() {
        match &items[i].prepared {
            Prepared::Search(_) => {
                let mut j = i;
                let mut queries = Vec::new();
                while j < items.len() {
                    match &items[j].prepared {
                        Prepared::Search(r) => queries.push(*r),
                        _ => break,
                    }
                    j += 1;
                }
                let _trace = shared.tracer.start(OpClass::Search, "server.search_batch");
                let results = shared.backend.search_many(&queries);
                for (item, ids) in items[i..j].iter().zip(results) {
                    fill_reply(outbox, item.seq, item.mode, &rows_response(ids));
                    stats.read_latency.record_duration(item.t0.elapsed());
                }
                i = j;
            }
            Prepared::Stab(_) => {
                let mut j = i;
                let mut points = Vec::new();
                while j < items.len() {
                    match &items[j].prepared {
                        Prepared::Stab(p) => points.push(*p),
                        _ => break,
                    }
                    j += 1;
                }
                let _trace = shared.tracer.start(OpClass::Stab, "server.stab_batch");
                let results = shared.backend.stab_many(&points);
                for (item, ids) in items[i..j].iter().zip(results) {
                    fill_reply(outbox, item.seq, item.mode, &rows_response(ids));
                    stats.read_latency.record_duration(item.t0.elapsed());
                }
                i = j;
            }
            Prepared::Write(_) => {
                let mut j = i;
                let mut ops = Vec::new();
                while j < items.len() {
                    match &items[j].prepared {
                        Prepared::Write(op) => ops.push(*op),
                        _ => break,
                    }
                    j += 1;
                }
                let submitted = shared.backend.submit_batch(ops);
                for (item, res) in items[i..j].iter().zip(submitted) {
                    match res {
                        Ok(ticket) => {
                            let outbox = Arc::clone(outbox);
                            let stats = Arc::clone(stats);
                            let (seq, mode, t0) = (item.seq, item.mode, item.t0);
                            // Completion runs on the index writer thread;
                            // nothing on this connection parks waiting.
                            ticket.on_complete(move |result| {
                                let text = match result {
                                    Ok(receipt) => format!("OK epoch={}", receipt.epoch),
                                    Err(e) => format!("ERR commit {e}"),
                                };
                                stats.write_latency.record_duration(t0.elapsed());
                                fill_reply(&outbox, seq, mode, &text);
                            });
                        }
                        Err(SubmitError::Overloaded { depth }) => {
                            stats.count_busy();
                            fill_reply(outbox, item.seq, item.mode, &format!("BUSY depth={depth}"));
                        }
                        Err(SubmitError::Closed) => {
                            fill_reply(
                                outbox,
                                item.seq,
                                item.mode,
                                "ERR commit submission queue closed",
                            );
                        }
                    }
                }
                i = j;
            }
            Prepared::Nearest(p, k) => {
                let _trace = shared.tracer.start(OpClass::Nearest, "server.nearest");
                let mut hits = shared.backend.nearest(p, *k);
                hits.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0 .0.cmp(&b.0 .0))
                });
                let mut text = format!("NEAR {}", hits.len());
                for (id, dist) in hits {
                    text.push(' ');
                    text.push_str(&format!("{}={dist:?}", id.0));
                }
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Record { key, value, at } => {
                let text = match shared
                    .temporal
                    .lock()
                    .unwrap()
                    .try_insert(*key, *value, *at)
                {
                    Ok(id) => format!("OK version={}", id.0),
                    Err(e) => format!("ERR exec {e}"),
                };
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.write_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::AsOf(t) => {
                let text = match shared.temporal.lock().unwrap().try_as_of(*t) {
                    Ok(versions) => vers_response(versions),
                    Err(e) => format!("ERR exec {e}"),
                };
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Within { t1, t2, lo, hi } => {
                let text = match shared.temporal.lock().unwrap().try_within(
                    Interval::new(*t1, *t2),
                    *lo,
                    *hi,
                ) {
                    Ok(versions) => vers_response(versions),
                    Err(e) => format!("ERR exec {e}"),
                };
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Flush => {
                let text = match shared.backend.flush() {
                    Ok(epoch) => format!("OK epoch={epoch}"),
                    Err(e) => format!("ERR commit {e}"),
                };
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Stats => {
                let text = format!(
                    "STATS {} records={} epoch={}",
                    shared.stats.summary_line(),
                    shared.backend.len(),
                    shared.backend.epoch(),
                );
                fill_reply(outbox, items[i].seq, items[i].mode, &text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Metrics => {
                let json = shared.registry.snapshot().to_json();
                fill_reply(outbox, items[i].seq, items[i].mode, &json);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
            Prepared::Reply(text) => {
                fill_reply(outbox, items[i].seq, items[i].mode, text);
                stats.read_latency.record_duration(items[i].t0.elapsed());
                i += 1;
            }
        }
    }
}

/// Serves one accepted connection to completion. Called on the dedicated
/// reader thread; spawns (and joins) the flusher thread itself.
pub(crate) fn serve(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let stats = shared.stats.open_connection();
    let outbox = Arc::new(Outbox::new());

    let flusher = {
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                shared.stats.close_connection(&stats);
                return;
            }
        };
        let outbox = Arc::clone(&outbox);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            while let Some(chunk) = outbox.next_chunk() {
                if write_half.write_all(&chunk).is_err() {
                    outbox.abort();
                    break;
                }
                stats.add_bytes_written(chunk.len() as u64);
            }
            let _ = write_half.shutdown(Shutdown::Write);
        })
    };

    let mut read_half = stream;
    let mut decoder = FrameDecoder::with_max_frame(shared.max_frame);
    let mut buf = vec![0u8; 64 * 1024];
    'conn: loop {
        let n = match read_half.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        stats.add_bytes_read(n as u64);
        decoder.feed(&buf[..n]);

        // Drain every complete frame from this read before executing, so
        // pipelined requests batch into single index calls.
        let mut items = Vec::new();
        let mut fatal = None;
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    stats.count_frame(frame.mode);
                    let t0 = Instant::now();
                    let prepared = prepare(&frame.text, &stats);
                    let seq = outbox.reserve();
                    items.push(Pending {
                        seq,
                        mode: frame.mode,
                        t0,
                        prepared,
                    });
                }
                Ok(None) => break,
                Err(e) => {
                    stats.count_protocol_error();
                    fatal = Some(e);
                    break;
                }
            }
        }
        let fatal_seq = fatal.as_ref().map(|_| outbox.reserve());
        execute_batch(&shared, &stats, &outbox, items);
        if let (Some(e), Some(seq)) = (fatal, fatal_seq) {
            // The stream is undecodable from here: answer in line mode
            // (readable either way) and drop the connection.
            fill_reply(&outbox, seq, Mode::Line, &format!("ERR protocol {e}"));
            break 'conn;
        }
    }

    outbox.close();
    let _ = flusher.join();
    shared.stats.close_connection(&stats);
}
