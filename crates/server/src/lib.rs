//! `segidx-server`: a pipelined TCP front-end over the concurrent segment
//! index service.
//!
//! The library the rest of the workspace exposes is embeddable; this crate
//! is the network story. A [`Server`] binds a TCP listener, and every
//! accepted connection speaks a small textual query language
//! (`INSERT RECT … ID …`, `DELETE ID … RECT …`, `SEARCH WINDOW …`,
//! `STAB POINT …`, `NEAREST POINT … K …`, plus `FLUSH`/`PING`/`STATS`/
//! `METRICS`) carried in length-prefixed binary frames — or bare
//! newline-terminated lines, so a human with `netcat` can drive it.
//!
//! The design goal is *pipelining without parked threads*: reads run in
//! batches against one epoch snapshot, and writes are admitted in batches
//! whose responses are produced by [`CommitTicket::on_complete`] callbacks
//! firing on the index writer thread. A connection with thousands of
//! in-flight writes costs exactly two threads (reader + response flusher),
//! never one per write. See the `conn` module for the ordered-outbox machinery and
//! [`frame`] for the wire format.
//!
//! [`CommitTicket::on_complete`]: segidx_concurrent::CommitTicket::on_complete
//!
//! ```no_run
//! use segidx_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! // …point clients (or `netcat`) at it…
//! server.shutdown();
//! ```

pub mod backend;
pub(crate) mod conn;
pub mod frame;
pub mod lexer;
pub mod parser;
pub mod server;
pub mod telemetry;

pub use backend::{Backend, BackendConfig, DIMS};
pub use frame::{
    encode_request, encode_response, Frame, FrameDecoder, FrameError, Mode, DEFAULT_MAX_FRAME,
};
pub use parser::{parse, ParseError, Statement};
pub use server::{Server, ServerConfig};
pub use telemetry::{ConnStats, ServerStats};
