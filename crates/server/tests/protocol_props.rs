//! Property tests for the wire layer: the query language's canonical
//! print form must re-parse to an equal statement for *arbitrary*
//! statements (exact f64 round-tripping included), and the frame codec
//! must reassemble arbitrary pipelines under arbitrary chunking.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_server::frame::{encode_request, encode_response, FrameDecoder, Mode};
use segidx_server::parser::{parse, Statement};

/// Finite, non-NaN coordinates across the full exponent range so the
/// shortest-round-trip printing (`{:?}`) is genuinely exercised.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e9..1e9f64,
        -1.0..1.0f64,
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
        any::<i32>().prop_map(|v| v as f64 * 1e-6),
    ]
}

/// Any statement of the language, over 1–4 dimensional points (the
/// grammar is dimension-agnostic; arity is checked at execution). Two
/// coordinate pools are drawn at maximum width and truncated to the
/// drawn dimensionality, which sidesteps the need for a dependent
/// (`flat_map`) strategy.
fn statement() -> impl Strategy<Value = Statement> {
    (
        0usize..12,         // which statement form
        1usize..5,          // dimensionality of the points
        vec(coord(), 4..5), // low corner / point pool
        vec(coord(), 4..5), // high corner pool
        any::<u64>(),       // record id / temporal key
        0usize..1000,       // NEAREST's K
    )
        .prop_map(|(form, dims, a, b, id, k)| {
            let lo: Vec<f64> = a[..dims].to_vec();
            let hi: Vec<f64> = b[..dims].to_vec();
            match form {
                0 => Statement::Insert { lo, hi, id },
                1 => Statement::Delete { id, lo, hi },
                2 => Statement::Search { lo, hi },
                3 => Statement::Stab { point: lo },
                4 => Statement::Nearest { point: lo, k },
                5 => Statement::Record {
                    key: id,
                    value: a[0],
                    at: b[0],
                },
                6 => Statement::AsOf { t: a[0] },
                7 => Statement::Within {
                    t1: a[0],
                    t2: a[1],
                    lo: b[0],
                    hi: b[1],
                },
                8 => Statement::Flush,
                9 => Statement::Ping,
                10 => Statement::Stats,
                _ => Statement::Metrics,
            }
        })
}

/// Printable-ASCII payload text (frames carry arbitrary statement text;
/// the codec never inspects it beyond the line terminator).
fn text(max_len: usize) -> impl Strategy<Value = String> {
    vec(0x20u8..0x7f, 1..max_len).prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

proptest! {
    /// Display prints a canonical form that parses back to an equal
    /// statement — including every f64 bit pattern the strategy produces
    /// (`{:?}` prints the shortest exactly-round-tripping decimal).
    #[test]
    fn print_then_parse_round_trips(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` failed to re-parse: {e}"));
        prop_assert_eq!(reparsed, stmt, "via `{}`", printed);
    }

    /// A pipeline of binary frames survives any chunking of the byte
    /// stream: the decoder yields exactly the texts encoded, in order,
    /// regardless of where the transport split the bytes.
    #[test]
    fn frame_pipeline_survives_arbitrary_chunking(
        texts in vec(text(65), 1..20),
        chunk in 1usize..17,
    ) {
        let mut wire = Vec::new();
        for t in &texts {
            encode_request(t, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame().unwrap() {
                prop_assert_eq!(f.mode, Mode::Binary);
                decoded.push(f.text);
            }
        }
        prop_assert_eq!(decoded, texts);
    }

    /// Response encoding in a frame's own mode decodes back to the
    /// payload (modulo line mode's documented newline flattening).
    #[test]
    fn response_encoding_round_trips(payload in text(129)) {
        for mode in [Mode::Binary, Mode::Line] {
            let mut wire = Vec::new();
            encode_response(mode, &payload, &mut wire);
            let mut dec = FrameDecoder::new();
            dec.feed(&wire);
            let f = dec.next_frame().unwrap().unwrap();
            prop_assert_eq!(&f.text, &payload);
        }
    }
}
