//! Scalar samplers for the paper's value distributions.

use rand::{Rng, RngExt};

/// A one-dimensional value sampler.
pub trait Sampler {
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> f64;

    /// Draws one value, rejection-clamped into `[lo, hi]` (resampling up to
    /// a fixed budget, then clamping — keeps the shape of the distribution
    /// better than plain clamping for heavy tails).
    fn sample_in<R: Rng>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        for _ in 0..16 {
            let v = self.sample(rng);
            if (lo..=hi).contains(&v) {
                return v;
            }
        }
        self.sample(rng).clamp(lo, hi)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform sampler over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid uniform range [{lo}, {hi})");
        Self { lo, hi }
    }
}

impl Sampler for Uniform {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

/// Exponential distribution with mean `beta` (inverse-transform sampling:
/// `-β · ln(1 - u)`). The paper uses β = 7000 for skewed Y values and
/// β = 2000 for skewed interval lengths.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    beta: f64,
}

impl Exponential {
    /// Creates an exponential sampler with mean `beta`.
    ///
    /// # Panics
    /// Panics if `beta` is not strictly positive.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive, got {beta}");
        Self { beta }
    }

    /// The distribution mean.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Sampler for Exponential {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u = rng.random_range(0.0_f64..1.0);
        -self.beta * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Uniform::new(5.0, 10.0);
        for _ in 0..10_000 {
            let v = u.sample(&mut rng);
            assert!((5.0..10.0).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Uniform::new(3.0, 3.0);
        assert_eq!(u.sample(&mut rng), 3.0);
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let mut rng = StdRng::seed_from_u64(42);
        let u = Uniform::new(0.0, 100.0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| u.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn exponential_mean_is_beta() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = Exponential::new(2_000.0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean / 2_000.0 - 1.0).abs() < 0.02,
            "mean {mean}, expected ≈ 2000"
        );
    }

    #[test]
    fn exponential_is_nonnegative_and_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let e = Exponential::new(7_000.0);
        let samples: Vec<f64> = (0..50_000).map(|_| e.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&v| v >= 0.0));
        // Median of Exp(β) is β·ln2 ≈ 0.693β < mean: strong right skew.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            (median / (7_000.0 * std::f64::consts::LN_2) - 1.0).abs() < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn sample_in_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let e = Exponential::new(100_000.0); // heavy tail vs the bound
        for _ in 0..5_000 {
            let v = e.sample_in(&mut rng, 0.0, 1_000.0);
            assert!((0.0..=1_000.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let e = Exponential::new(2_000.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(33);
            (0..100).map(|_| e.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(33);
            (0..100).map(|_| e.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
