//! Workload generators reproducing the experimental setup of
//! *Segment Indexes* (Kolovson & Stonebraker, SIGMOD 1991, §5).
//!
//! The paper evaluates four index variants on six input distributions over
//! the domain `[0, 100000]²`:
//!
//! * **I1–I4** — line-segment (interval) data: Y values are points, X values
//!   are intervals. Y is uniform or exponential (β = 7000); interval length
//!   is uniform over `[0, 100]` or exponential (β = 2000).
//! * **R1–R2** — rectangle data: uniformly distributed centroids with
//!   uniform (`[0, 100]`) or exponential (β = 2000) side lengths.
//! * **RE1–RE2** — the rectangle variants with *exponential centroid*
//!   distributions that the paper ran but omitted for brevity ("the results
//!   were qualitatively similar").
//!
//! Queries are rectangles of area 10⁶ whose horizontal-to-vertical aspect
//! ratio (QAR) sweeps thirteen values from 10⁻⁴ to 10⁴, 100 random-centroid
//! queries per QAR.
//!
//! All generation is deterministic given a seed.
//!
//! ```
//! use segidx_workloads::{DataDistribution, paper_query_sweep, domain};
//!
//! // Graph 3's input: exponential interval lengths, uniform Y values.
//! let dataset = DataDistribution::I3.generate(1_000, 42);
//! assert_eq!(dataset.len(), 1_000);
//! assert!(dataset.records.iter().all(|(r, _)| domain().contains_rect(r)));
//!
//! // The paper's thirteen-QAR query sweep, 100 queries each.
//! let sweep = paper_query_sweep(7);
//! assert_eq!(sweep.len(), 13);
//! assert_eq!(sweep[0].queries.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod datasets;
mod dist;
mod io;
mod queries;

pub use datasets::{DataDistribution, Dataset};
pub use dist::{Exponential, Sampler, Uniform};
pub use io::DatasetIoError;
pub use queries::{paper_query_sweep, queries_for_qar, QuerySet};

use segidx_geom::Rect;

/// The paper's data domain: `[0, 100000]` in both dimensions.
pub const DOMAIN_MAX: f64 = 100_000.0;

/// The paper's domain as a rectangle.
pub fn domain() -> Rect<2> {
    Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX])
}

/// Exponential parameter for skewed Y values (paper: β = 7000).
pub const BETA_Y: f64 = 7_000.0;

/// Exponential parameter for skewed interval lengths (paper: β = 2000).
pub const BETA_LEN: f64 = 2_000.0;

/// Upper bound of the uniform interval-length distribution (paper: 100).
pub const SHORT_LEN_MAX: f64 = 100.0;

/// Query rectangle area (paper: 1,000,000).
pub const QUERY_AREA: f64 = 1_000_000.0;

/// Queries per QAR value (paper: 100).
pub const QUERIES_PER_QAR: usize = 100;
