//! Query workloads: the paper's QAR sweep (§5).

use crate::dist::{Sampler, Uniform};
use crate::{DOMAIN_MAX, QUERIES_PER_QAR, QUERY_AREA};
use rand::rngs::StdRng;
use rand::SeedableRng;
use segidx_geom::{rect_from_area_qar, Point, Rect, PAPER_QAR_SWEEP};

/// The queries for one QAR value.
#[derive(Clone, Debug)]
pub struct QuerySet {
    /// The horizontal-to-vertical aspect ratio.
    pub qar: f64,
    /// `log₁₀(qar)` — the X coordinate in the paper's graphs.
    pub log10_qar: f64,
    /// Query rectangles of area [`QUERY_AREA`], centroids uniform over the
    /// domain.
    pub queries: Vec<Rect<2>>,
}

/// Queries for a single QAR value: `count` rectangles of area
/// [`QUERY_AREA`] with uniformly random centroids, deterministic in `seed`.
pub fn queries_for_qar(qar: f64, count: usize, seed: u64) -> QuerySet {
    let mut rng = StdRng::seed_from_u64(seed ^ qar.to_bits());
    let centroid = Uniform::new(0.0, DOMAIN_MAX);
    let queries = (0..count)
        .map(|_| {
            let cx = centroid.sample(&mut rng);
            let cy = centroid.sample(&mut rng);
            rect_from_area_qar(Point::new([cx, cy]), QUERY_AREA, qar)
        })
        .collect();
    QuerySet {
        qar,
        log10_qar: qar.log10(),
        queries,
    }
}

/// The full sweep of paper §5: 100 queries for each of the thirteen QAR
/// values from 10⁻⁴ to 10⁴.
pub fn paper_query_sweep(seed: u64) -> Vec<QuerySet> {
    PAPER_QAR_SWEEP
        .iter()
        .map(|&qar| queries_for_qar(qar, QUERIES_PER_QAR, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_paper_shape() {
        let sweep = paper_query_sweep(1);
        assert_eq!(sweep.len(), 13);
        for qs in &sweep {
            assert_eq!(qs.queries.len(), QUERIES_PER_QAR);
            for q in &qs.queries {
                assert!((q.area() - QUERY_AREA).abs() < 1e-3);
                let qar = q.extent(0) / q.extent(1);
                assert!((qar / qs.qar - 1.0).abs() < 1e-9);
            }
        }
        assert_eq!(sweep[0].qar, 0.0001);
        assert_eq!(sweep[12].qar, 10_000.0);
    }

    #[test]
    fn centroids_lie_in_domain() {
        let qs = queries_for_qar(1.0, 500, 9);
        for q in &qs.queries {
            let c = q.center();
            assert!((0.0..DOMAIN_MAX).contains(&c[0]));
            assert!((0.0..DOMAIN_MAX).contains(&c[1]));
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_per_qar() {
        let a = queries_for_qar(0.5, 10, 4);
        let b = queries_for_qar(0.5, 10, 4);
        assert_eq!(a.queries, b.queries);
        let c = queries_for_qar(2.0, 10, 4);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn log_axis_matches() {
        let qs = queries_for_qar(100.0, 1, 0);
        assert!((qs.log10_qar - 2.0).abs() < 1e-12);
    }
}
