//! The paper's input data distributions (§5).

use crate::dist::{Exponential, Sampler, Uniform};
use crate::{BETA_LEN, BETA_Y, DOMAIN_MAX, SHORT_LEN_MAX};
use rand::rngs::StdRng;
use rand::SeedableRng;
use segidx_core::RecordId;
use segidx_geom::Rect;
use serde::{Deserialize, Serialize};

/// How interval lengths are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LengthKind {
    /// Uniform over `[0, 100]` — "relatively short" intervals.
    Short,
    /// Exponential with β = 2000 — the skewed mix of many short and a few
    /// very long intervals that motivates Segment Indexes.
    Exponential,
}

/// How point coordinates (Y values / centroids) are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ValueKind {
    Uniform,
    /// Exponential with β = 7000, clamped into the domain.
    Exponential,
}

/// The input distributions of paper §5 (plus the two exponential-centroid
/// rectangle variants the paper ran but omitted for brevity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataDistribution {
    /// Interval data: uniform Y values, uniform lengths over `[0, 100]`.
    I1,
    /// Interval data: exponential Y values (β = 7000), uniform lengths.
    I2,
    /// Interval data: uniform Y values, exponential lengths (β = 2000).
    I3,
    /// Interval data: exponential Y values, exponential lengths.
    I4,
    /// Rectangle data: uniform centroids, uniform side lengths.
    R1,
    /// Rectangle data: uniform centroids, exponential side lengths.
    R2,
    /// Rectangle data: exponential centroids, uniform side lengths
    /// (mentioned in §5.1, results omitted there).
    RE1,
    /// Rectangle data: exponential centroids, exponential side lengths
    /// (mentioned in §5.1, results omitted there).
    RE2,
}

impl DataDistribution {
    /// All distributions, in paper order.
    pub const ALL: [DataDistribution; 8] = [
        DataDistribution::I1,
        DataDistribution::I2,
        DataDistribution::I3,
        DataDistribution::I4,
        DataDistribution::R1,
        DataDistribution::R2,
        DataDistribution::RE1,
        DataDistribution::RE2,
    ];

    /// The six distributions whose results appear as Graphs 1–6.
    pub const PAPER_GRAPHS: [DataDistribution; 6] = [
        DataDistribution::I1,
        DataDistribution::I2,
        DataDistribution::I3,
        DataDistribution::I4,
        DataDistribution::R1,
        DataDistribution::R2,
    ];

    /// Short identifier (`"I1"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            DataDistribution::I1 => "I1",
            DataDistribution::I2 => "I2",
            DataDistribution::I3 => "I3",
            DataDistribution::I4 => "I4",
            DataDistribution::R1 => "R1",
            DataDistribution::R2 => "R2",
            DataDistribution::RE1 => "RE1",
            DataDistribution::RE2 => "RE2",
        }
    }

    /// The paper's prose description.
    pub fn description(&self) -> &'static str {
        match self {
            DataDistribution::I1 => "intervals: uniform Y, uniform length [0,100]",
            DataDistribution::I2 => "intervals: exponential Y (β=7000), uniform length",
            DataDistribution::I3 => "intervals: uniform Y, exponential length (β=2000)",
            DataDistribution::I4 => "intervals: exponential Y, exponential length",
            DataDistribution::R1 => "rectangles: uniform centroids, uniform sides [0,100]",
            DataDistribution::R2 => "rectangles: uniform centroids, exponential sides (β=2000)",
            DataDistribution::RE1 => "rectangles: exponential centroids, uniform sides",
            DataDistribution::RE2 => "rectangles: exponential centroids, exponential sides",
        }
    }

    /// Whether this is line-segment (interval) data as opposed to rectangle
    /// data.
    pub fn is_interval(&self) -> bool {
        matches!(
            self,
            DataDistribution::I1
                | DataDistribution::I2
                | DataDistribution::I3
                | DataDistribution::I4
        )
    }

    fn length_kind(&self) -> LengthKind {
        match self {
            DataDistribution::I1
            | DataDistribution::I2
            | DataDistribution::R1
            | DataDistribution::RE1 => LengthKind::Short,
            DataDistribution::I3
            | DataDistribution::I4
            | DataDistribution::R2
            | DataDistribution::RE2 => LengthKind::Exponential,
        }
    }

    fn value_kind(&self) -> ValueKind {
        match self {
            DataDistribution::I1
            | DataDistribution::I3
            | DataDistribution::R1
            | DataDistribution::R2 => ValueKind::Uniform,
            DataDistribution::I2
            | DataDistribution::I4
            | DataDistribution::RE1
            | DataDistribution::RE2 => ValueKind::Exponential,
        }
    }

    /// Generates `n` tuples deterministically from `seed`, in random order
    /// (the paper inserts the entire set in random order).
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(self.name()));
        let center = Uniform::new(0.0, DOMAIN_MAX);
        let exp_value = Exponential::new(BETA_Y);
        let short_len = Uniform::new(0.0, SHORT_LEN_MAX);
        let exp_len = Exponential::new(BETA_LEN);

        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let draw_center = |rng: &mut StdRng, kind: ValueKind| -> f64 {
                match kind {
                    ValueKind::Uniform => center.sample(rng),
                    ValueKind::Exponential => exp_value.sample_in(rng, 0.0, DOMAIN_MAX),
                }
            };
            let draw_len = |rng: &mut StdRng| -> f64 {
                match self.length_kind() {
                    LengthKind::Short => short_len.sample(rng),
                    LengthKind::Exponential => exp_len.sample(rng),
                }
            };
            let rect = if self.is_interval() {
                // X: an interval; Y: a point value.
                let cx = center.sample(&mut rng);
                let len = draw_len(&mut rng);
                let y = draw_center(&mut rng, self.value_kind());
                let x0 = (cx - len / 2.0).clamp(0.0, DOMAIN_MAX);
                let x1 = (cx + len / 2.0).clamp(0.0, DOMAIN_MAX);
                Rect::new([x0, y], [x1, y])
            } else {
                // Both dimensions are intervals around the centroid.
                let kind = self.value_kind();
                let cx = draw_center(&mut rng, kind);
                let cy = draw_center(&mut rng, kind);
                let lx = draw_len(&mut rng);
                let ly = draw_len(&mut rng);
                Rect::new(
                    [
                        (cx - lx / 2.0).clamp(0.0, DOMAIN_MAX),
                        (cy - ly / 2.0).clamp(0.0, DOMAIN_MAX),
                    ],
                    [
                        (cx + lx / 2.0).clamp(0.0, DOMAIN_MAX),
                        (cy + ly / 2.0).clamp(0.0, DOMAIN_MAX),
                    ],
                )
            };
            records.push((rect, RecordId(i as u64)));
        }
        Dataset {
            distribution: *self,
            seed,
            records,
        }
    }
}

/// A generated input set.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which distribution produced it.
    pub distribution: DataDistribution,
    /// The seed it was generated from.
    pub seed: u64,
    /// The tuples, in insertion (random) order.
    pub records: Vec<(Rect<2>, RecordId)>,
}

impl Dataset {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Tiny stable string hash for seed derivation (FNV-1a).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain;

    #[test]
    fn all_distributions_generate_in_domain() {
        for dist in DataDistribution::ALL {
            let ds = dist.generate(2_000, 42);
            assert_eq!(ds.len(), 2_000);
            for (r, _) in &ds.records {
                assert!(
                    domain().contains_rect(r),
                    "{}: {r:?} escapes the domain",
                    dist.name()
                );
            }
        }
    }

    #[test]
    fn interval_data_has_point_y() {
        for dist in [
            DataDistribution::I1,
            DataDistribution::I2,
            DataDistribution::I3,
            DataDistribution::I4,
        ] {
            let ds = dist.generate(500, 7);
            assert!(ds.records.iter().all(|(r, _)| r.extent(1) == 0.0));
        }
    }

    #[test]
    fn rectangle_data_has_positive_extent_in_both_dims() {
        let ds = DataDistribution::R2.generate(500, 7);
        let with_area = ds
            .records
            .iter()
            .filter(|(r, _)| r.extent(0) > 0.0 && r.extent(1) > 0.0)
            .count();
        assert!(with_area > 450, "most rectangles have positive area");
    }

    #[test]
    fn short_lengths_bounded_long_lengths_unbounded() {
        let short = DataDistribution::I1.generate(5_000, 1);
        assert!(short
            .records
            .iter()
            .all(|(r, _)| r.extent(0) <= SHORT_LEN_MAX));
        let long = DataDistribution::I3.generate(5_000, 1);
        let over = long
            .records
            .iter()
            .filter(|(r, _)| r.extent(0) > SHORT_LEN_MAX)
            .count();
        // P(Exp(2000) > 100) ≈ 0.95.
        assert!(
            over > 4_000,
            "expected most exponential lengths > 100, got {over}"
        );
        let mean: f64 =
            long.records.iter().map(|(r, _)| r.extent(0)).sum::<f64>() / long.len() as f64;
        assert!((mean / BETA_LEN - 1.0).abs() < 0.1, "mean length {mean}");
    }

    #[test]
    fn exponential_y_is_skewed_low() {
        let ds = DataDistribution::I2.generate(10_000, 3);
        let low = ds.records.iter().filter(|(r, _)| r.lo(1) < BETA_Y).count();
        // P(Exp(7000) < 7000) = 1 - 1/e ≈ 0.63.
        assert!(
            (low as f64 / 10_000.0 - 0.63).abs() < 0.03,
            "{low} of 10000 below β"
        );
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = DataDistribution::I3.generate(100, 5);
        let b = DataDistribution::I3.generate(100, 5);
        let c = DataDistribution::I3.generate(100, 6);
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
        // Distinct distributions do not share streams even with equal seeds.
        let d = DataDistribution::I4.generate(100, 5);
        assert_ne!(a.records, d.records);
    }
}
