//! Dataset import/export.
//!
//! Generated workloads are deterministic given a seed, but exporting the
//! exact tuples makes runs auditable and lets external tools (plotting,
//! other implementations) consume identical inputs. The format is a plain
//! CSV with a comment header:
//!
//! ```text
//! # segidx-dataset distribution=I3 seed=42
//! id,x_lo,y_lo,x_hi,y_hi
//! 0,123.4,50.0,2123.4,50.0
//! ```

use crate::datasets::{DataDistribution, Dataset};
use segidx_core::RecordId;
use segidx_geom::Rect;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from dataset IO.
#[derive(Debug)]
pub enum DatasetIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid dataset export.
    Format {
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        message: String,
    },
}

impl std::fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "i/o error: {e}"),
            DatasetIoError::Format { line, message } => {
                write!(f, "format error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

impl Dataset {
    /// Writes the dataset as CSV.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), DatasetIoError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            w,
            "# segidx-dataset distribution={} seed={}",
            self.distribution.name(),
            self.seed
        )?;
        writeln!(w, "id,x_lo,y_lo,x_hi,y_hi")?;
        for (rect, id) in &self.records {
            writeln!(
                w,
                "{},{},{},{},{}",
                id.raw(),
                rect.lo(0),
                rect.lo(1),
                rect.hi(0),
                rect.hi(1)
            )?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a dataset previously written by [`Dataset::write_csv`].
    pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset, DatasetIoError> {
        let f = std::fs::File::open(path)?;
        let mut lines = BufReader::new(f).lines().enumerate();

        let (_, header) = lines.next().ok_or(DatasetIoError::Format {
            line: 1,
            message: "empty file".into(),
        })?;
        let header = header?;
        let (distribution, seed) = parse_header(&header).ok_or(DatasetIoError::Format {
            line: 1,
            message: format!("bad header: {header:?}"),
        })?;

        let (_, columns) = lines.next().ok_or(DatasetIoError::Format {
            line: 2,
            message: "missing column row".into(),
        })?;
        let columns = columns?;
        if columns.trim() != "id,x_lo,y_lo,x_hi,y_hi" {
            return Err(DatasetIoError::Format {
                line: 2,
                message: format!("unexpected columns: {columns:?}"),
            });
        }

        let mut records = Vec::new();
        for (idx, line) in lines {
            let line = line?;
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(DatasetIoError::Format {
                    line: lineno,
                    message: format!("expected 5 fields, got {}", fields.len()),
                });
            }
            let parse = |s: &str, what: &str| -> Result<f64, DatasetIoError> {
                s.trim().parse().map_err(|_| DatasetIoError::Format {
                    line: lineno,
                    message: format!("bad {what}: {s:?}"),
                })
            };
            let id: u64 = fields[0]
                .trim()
                .parse()
                .map_err(|_| DatasetIoError::Format {
                    line: lineno,
                    message: format!("bad id: {:?}", fields[0]),
                })?;
            let lo = [parse(fields[1], "x_lo")?, parse(fields[2], "y_lo")?];
            let hi = [parse(fields[3], "x_hi")?, parse(fields[4], "y_hi")?];
            let rect = Rect::checked(lo, hi).ok_or(DatasetIoError::Format {
                line: lineno,
                message: "inverted rectangle bounds".into(),
            })?;
            records.push((rect, RecordId(id)));
        }
        Ok(Dataset {
            distribution,
            seed,
            records,
        })
    }
}

fn parse_header(header: &str) -> Option<(DataDistribution, u64)> {
    let rest = header.strip_prefix("# segidx-dataset ")?;
    let mut distribution = None;
    let mut seed = None;
    for token in rest.split_whitespace() {
        if let Some(name) = token.strip_prefix("distribution=") {
            distribution = DataDistribution::ALL
                .iter()
                .find(|d| d.name() == name)
                .copied();
        } else if let Some(v) = token.strip_prefix("seed=") {
            seed = v.parse().ok();
        }
    }
    Some((distribution?, seed?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("segidx-dsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DataDistribution::I3.generate(500, 99);
        let path = temp("i3.csv");
        ds.write_csv(&path).unwrap();
        let back = Dataset::read_csv(&path).unwrap();
        assert_eq!(back.distribution, ds.distribution);
        assert_eq!(back.seed, ds.seed);
        assert_eq!(back.records, ds.records);
    }

    #[test]
    fn rejects_malformed_files() {
        let path = temp("bad1.csv");
        std::fs::write(&path, "not a dataset\n").unwrap();
        assert!(matches!(
            Dataset::read_csv(&path),
            Err(DatasetIoError::Format { line: 1, .. })
        ));

        let path = temp("bad2.csv");
        std::fs::write(
            &path,
            "# segidx-dataset distribution=R1 seed=1\nid,x_lo,y_lo,x_hi,y_hi\n0,5,5,1,1\n",
        )
        .unwrap();
        let err = Dataset::read_csv(&path).unwrap_err();
        assert!(err.to_string().contains("inverted"));

        let path = temp("bad3.csv");
        std::fs::write(
            &path,
            "# segidx-dataset distribution=R1 seed=1\nid,x_lo,y_lo,x_hi,y_hi\n0,1,2\n",
        )
        .unwrap();
        let err = Dataset::read_csv(&path).unwrap_err();
        assert!(err.to_string().contains("5 fields"));
    }

    #[test]
    fn unknown_distribution_rejected() {
        let path = temp("bad4.csv");
        std::fs::write(
            &path,
            "# segidx-dataset distribution=Z9 seed=1\nid,x_lo,y_lo,x_hi,y_hi\n",
        )
        .unwrap();
        assert!(Dataset::read_csv(&path).is_err());
    }

    #[test]
    fn blank_lines_tolerated() {
        let ds = DataDistribution::R1.generate(10, 3);
        let path = temp("blank.csv");
        ds.write_csv(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        assert_eq!(Dataset::read_csv(&path).unwrap().records, ds.records);
    }
}
