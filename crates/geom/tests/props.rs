//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use segidx_geom::{Interval, Point, Rect};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-1.0e6..1.0e6f64, 0.0..1.0e5f64).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn rect2_strategy() -> impl Strategy<Value = Rect<2>> {
    (interval_strategy(), interval_strategy()).prop_map(|(x, y)| Rect::from_intervals([x, y]))
}

proptest! {
    #[test]
    fn interval_union_spans_both(a in interval_strategy(), b in interval_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.spans(&a));
        prop_assert!(u.spans(&b));
        prop_assert!(u.length() >= a.length().max(b.length()));
    }

    #[test]
    fn interval_intersection_contained(a in interval_strategy(), b in interval_strategy()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.spans(&i));
            prop_assert!(b.spans(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn interval_subtract_partitions_length(a in interval_strategy(), b in interval_strategy()) {
        let clipped = a.clip(&b).map_or(0.0, |c| c.length());
        let remnant: f64 = a.subtract(&b).iter().map(|r| r.length()).sum();
        prop_assert!((clipped + remnant - a.length()).abs() < 1e-6);
    }

    #[test]
    fn interval_enlargement_nonnegative(a in interval_strategy(), b in interval_strategy()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        // After union, enlargement is zero.
        let u = a.union(&b);
        prop_assert_eq!(u.enlargement(&b), 0.0);
    }

    #[test]
    fn rect_union_contains_both(a in rect2_strategy(), b in rect2_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_intersection_symmetric_and_contained(a in rect2_strategy(), b in rect2_strategy()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(a.contains_rect(&x));
                prop_assert!(b.contains_rect(&x));
            }
            (None, None) => prop_assert!(!a.intersects(&b)),
            _ => prop_assert!(false, "intersection not symmetric"),
        }
    }

    #[test]
    fn rect_enlargement_nonnegative(a in rect2_strategy(), b in rect2_strategy()) {
        prop_assert!(a.enlargement(&b) >= -1e-9);
        prop_assert!(a.union(&b).enlargement(&b).abs() < 1e-9);
    }

    #[test]
    fn rect_cut_partitions_area(a in rect2_strategy(), b in rect2_strategy()) {
        let cut = a.cut(&b);
        let span_area = cut.spanning.map_or(0.0, |s| s.area());
        let rem_area: f64 = cut.remnants.iter().map(|r| r.area()).sum();
        // Relative tolerance: areas here can reach ~1e10.
        let scale = a.area().max(1.0);
        prop_assert!(((span_area + rem_area) - a.area()).abs() / scale < 1e-9);
        // All pieces stay within the original record.
        if let Some(s) = cut.spanning {
            prop_assert!(a.contains_rect(&s));
            prop_assert!(b.contains_rect(&s));
        }
        for r in &cut.remnants {
            prop_assert!(a.contains_rect(r));
        }
        // Remnants are pairwise non-overlapping (zero-area overlap allowed on
        // shared boundaries).
        for (i, r1) in cut.remnants.iter().enumerate() {
            for r2 in cut.remnants.iter().skip(i + 1) {
                prop_assert!(r1.overlap_area(r2) < 1e-9);
            }
        }
    }

    #[test]
    fn rect_spanning_implies_intersecting(a in rect2_strategy(), b in rect2_strategy()) {
        if a.spans_any_dim(&b) {
            prop_assert!(a.intersects(&b));
        }
        if a.contains_rect(&b) {
            prop_assert!(a.spans_any_dim(&b));
        }
    }

    #[test]
    fn min_dist_properties(a in rect2_strategy(), x in -2.0e6..2.0e6f64, y in -2.0e6..2.0e6f64) {
        let p = Point::new([x, y]);
        let d = a.min_dist_sqr(&p);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d == 0.0, a.contains_point(&p));
        prop_assert!((a.min_dist(&p) * a.min_dist(&p) - d).abs() <= 1e-6 * d.max(1.0));
        // Distance to a larger rectangle can only shrink.
        let bigger = a.union(&Rect::from_point(Point::new([x + 1.0, y + 1.0])));
        prop_assert!(bigger.min_dist_sqr(&p) <= d + 1e-9);
    }

    #[test]
    fn point_in_rect_iff_degenerate_rect_contained(
        a in rect2_strategy(),
        x in -1.0e6..1.0e6f64,
        y in -1.0e6..1.0e6f64,
    ) {
        let p = Point::new([x, y]);
        prop_assert_eq!(a.contains_point(&p), a.contains_rect(&Rect::from_point(p)));
    }
}
