//! Branchless scan kernels over structure-of-arrays coordinate planes.
//!
//! A node that stores its entry rectangles as per-dimension `lo`/`hi`
//! planes (contiguous `&[f64]` per dimension) can test every entry
//! against a query with straight-line arithmetic: one comparison pair per
//! dimension, accumulated into a byte mask, no data-dependent branches
//! inside the loop. The loops are written over fixed-width chunks so the
//! compiler auto-vectorizes them (the predicate `lo ≤ q.hi && hi ≥ q.lo`
//! becomes two SIMD compares and an AND per plane).
//!
//! Matching indexes are emitted in ascending order, so callers that need
//! entry payloads (record ids, child pointers) gather them afterwards
//! with sequential access into the parallel payload arrays.

use crate::{Coord, Point, Rect};

/// Entries processed per mask accumulation block. 64 keeps the mask
/// buffer in one or two cache lines while giving the vectorizer long
/// straight-line runs.
const CHUNK: usize = 64;

/// Appends to `out` the index of every entry whose rectangle intersects
/// `query`, scanning per-dimension coordinate planes.
///
/// `los[d][i]` / `his[d][i]` are entry `i`'s bounds in dimension `d`; all
/// planes must have equal lengths. Indexes are appended in ascending
/// order. `out` is **not** cleared — callers reuse buffers across nodes.
///
/// ```
/// use segidx_geom::{scan_intersects, Rect};
///
/// let los_x = [0.0, 10.0, 20.0];
/// let his_x = [5.0, 15.0, 25.0];
/// let los_y = [0.0, 0.0, 0.0];
/// let his_y = [1.0, 1.0, 1.0];
/// let query = Rect::new([4.0, 0.0], [12.0, 2.0]);
/// let mut out = Vec::new();
/// scan_intersects(&query, [&los_x, &los_y], [&his_x, &his_y], &mut out);
/// assert_eq!(out, vec![0, 1]);
/// ```
pub fn scan_intersects<const D: usize>(
    query: &Rect<D>,
    los: [&[Coord]; D],
    his: [&[Coord]; D],
    out: &mut Vec<u32>,
) {
    let n = los[0].len();
    debug_assert!(
        los.iter().all(|p| p.len() == n) && his.iter().all(|p| p.len() == n),
        "coordinate planes must have equal lengths"
    );
    let mut mask = [0u64; CHUNK];
    let mut base = 0;
    // Full chunks see a compile-time trip count (the `&[Coord; CHUNK]`
    // windows below), which is what lets LLVM vectorize the compares.
    while n - base >= CHUNK {
        for d in 0..D {
            let (q_lo, q_hi) = (query.lo(d), query.hi(d));
            let lo_p: &[Coord; CHUNK] = los[d][base..base + CHUNK].try_into().unwrap();
            let hi_p: &[Coord; CHUNK] = his[d][base..base + CHUNK].try_into().unwrap();
            if d == 0 {
                for i in 0..CHUNK {
                    mask[i] = u64::from(lo_p[i] <= q_hi) & u64::from(hi_p[i] >= q_lo);
                }
            } else {
                for i in 0..CHUNK {
                    mask[i] &= u64::from(lo_p[i] <= q_hi) & u64::from(hi_p[i] >= q_lo);
                }
            }
        }
        emit_hits(&mask, CHUNK, base, out);
        base += CHUNK;
    }
    // Variable-length tail.
    let m = n - base;
    if m > 0 {
        for d in 0..D {
            let (q_lo, q_hi) = (query.lo(d), query.hi(d));
            let (lo_p, hi_p) = (&los[d][base..], &his[d][base..]);
            if d == 0 {
                for i in 0..m {
                    mask[i] = u64::from(lo_p[i] <= q_hi) & u64::from(hi_p[i] >= q_lo);
                }
            } else {
                for i in 0..m {
                    mask[i] &= u64::from(lo_p[i] <= q_hi) & u64::from(hi_p[i] >= q_lo);
                }
            }
        }
        emit_hits(&mask, m, base, out);
    }
}

/// Pushes `base + i` for every set lane of `mask[..m]`. The lanes are
/// first compressed into one `u64` bit set (a vectorizable reduction),
/// then only the set bits are visited via `trailing_zeros`, so emission
/// cost scales with the hit count rather than the chunk width.
#[inline]
fn emit_hits(mask: &[u64; CHUNK], m: usize, base: usize, out: &mut Vec<u32>) {
    let mut bits = 0u64;
    if m == CHUNK {
        for (i, &hit) in mask.iter().enumerate() {
            bits |= (hit & 1) << i;
        }
    } else {
        for (i, &hit) in mask[..m].iter().enumerate() {
            bits |= (hit & 1) << i;
        }
    }
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        out.push((base + i) as u32);
        bits &= bits - 1;
    }
}

/// Appends to `out` the index of every entry whose rectangle contains the
/// point `p` (closed bounds) — the stabbing-query kernel. Equivalent to
/// [`scan_intersects`] with the degenerate rectangle at `p`, without
/// constructing it.
pub fn scan_stab<const D: usize>(
    p: &Point<D>,
    los: [&[Coord]; D],
    his: [&[Coord]; D],
    out: &mut Vec<u32>,
) {
    let n = los[0].len();
    let mut mask = [0u64; CHUNK];
    let mut base = 0;
    while n - base >= CHUNK {
        for d in 0..D {
            let c = p.coord(d);
            let lo_p: &[Coord; CHUNK] = los[d][base..base + CHUNK].try_into().unwrap();
            let hi_p: &[Coord; CHUNK] = his[d][base..base + CHUNK].try_into().unwrap();
            if d == 0 {
                for i in 0..CHUNK {
                    mask[i] = u64::from(lo_p[i] <= c) & u64::from(hi_p[i] >= c);
                }
            } else {
                for i in 0..CHUNK {
                    mask[i] &= u64::from(lo_p[i] <= c) & u64::from(hi_p[i] >= c);
                }
            }
        }
        emit_hits(&mask, CHUNK, base, out);
        base += CHUNK;
    }
    let m = n - base;
    if m > 0 {
        for d in 0..D {
            let c = p.coord(d);
            let (lo_p, hi_p) = (&los[d][base..], &his[d][base..]);
            if d == 0 {
                for i in 0..m {
                    mask[i] = u64::from(lo_p[i] <= c) & u64::from(hi_p[i] >= c);
                }
            } else {
                for i in 0..m {
                    mask[i] &= u64::from(lo_p[i] <= c) & u64::from(hi_p[i] >= c);
                }
            }
        }
        emit_hits(&mask, m, base, out);
    }
}

/// Appends to `out` the index of every entry whose `lo` coordinate is at
/// most `bound` — the one-sided half of the intersection predicate.
///
/// HINT-style partition classes elide one (or both) comparisons of the
/// overlap test per class; this kernel serves the classes where only the
/// `start ≤ query.hi` side remains. Same contract as [`scan_intersects`]:
/// ascending indexes, `out` not cleared.
pub fn scan_lo_le(los: &[Coord], bound: Coord, out: &mut Vec<u32>) {
    let n = los.len();
    let mut mask = [0u64; CHUNK];
    let mut base = 0;
    while n - base >= CHUNK {
        let lo_p: &[Coord; CHUNK] = los[base..base + CHUNK].try_into().unwrap();
        for i in 0..CHUNK {
            mask[i] = u64::from(lo_p[i] <= bound);
        }
        emit_hits(&mask, CHUNK, base, out);
        base += CHUNK;
    }
    let m = n - base;
    if m > 0 {
        let lo_p = &los[base..];
        for i in 0..m {
            mask[i] = u64::from(lo_p[i] <= bound);
        }
        emit_hits(&mask, m, base, out);
    }
}

/// Appends to `out` the index of every entry whose `hi` coordinate is at
/// least `bound` — the other one-sided half of the intersection
/// predicate (`end ≥ query.lo`). Same contract as [`scan_lo_le`].
pub fn scan_hi_ge(his: &[Coord], bound: Coord, out: &mut Vec<u32>) {
    let n = his.len();
    let mut mask = [0u64; CHUNK];
    let mut base = 0;
    while n - base >= CHUNK {
        let hi_p: &[Coord; CHUNK] = his[base..base + CHUNK].try_into().unwrap();
        for i in 0..CHUNK {
            mask[i] = u64::from(hi_p[i] >= bound);
        }
        emit_hits(&mask, CHUNK, base, out);
        base += CHUNK;
    }
    let m = n - base;
    if m > 0 {
        let hi_p = &his[base..];
        for i in 0..m {
            mask[i] = u64::from(hi_p[i] >= bound);
        }
        emit_hits(&mask, m, base, out);
    }
}

/// Writes into `dists` the squared Euclidean `MINDIST` from `p` to every
/// entry rectangle (`dists` is resized to the plane length). Used by
/// best-first nearest-neighbor traversal to score a whole node in one
/// branchless pass.
pub fn scan_min_dist_sqr<const D: usize>(
    p: &Point<D>,
    los: [&[Coord]; D],
    his: [&[Coord]; D],
    dists: &mut Vec<f64>,
) {
    let n = los[0].len();
    dists.clear();
    dists.resize(n, 0.0);
    for d in 0..D {
        let c = p.coord(d);
        let (lo_p, hi_p) = (los[d], his[d]);
        for i in 0..n {
            // Distance to the slab in this dimension: max(lo-c, 0, c-hi),
            // computed branchlessly with float max.
            let gap = (lo_p[i] - c).max(c - hi_p[i]).max(0.0);
            dists[i] += gap * gap;
        }
    }
}

/// Returns `(index, enlargement, area)` of the entry needing the least
/// area enlargement to cover `query`, ties broken by smaller area — the
/// Guttman ChooseLeaf criterion — or `None` for empty planes. One
/// branch-free arithmetic pass over the planes replaces per-entry `Rect`
/// reconstruction in the insert descent.
pub fn scan_min_enlargement<const D: usize>(
    query: &Rect<D>,
    los: [&[Coord]; D],
    his: [&[Coord]; D],
) -> Option<(usize, f64, f64)> {
    let n = los[0].len();
    let mut best: Option<(usize, f64, f64)> = None;
    for i in 0..n {
        let mut area = 1.0f64;
        let mut union_area = 1.0f64;
        for d in 0..D {
            let (lo, hi) = (los[d][i], his[d][i]);
            area *= hi - lo;
            union_area *= hi.max(query.hi(d)) - lo.min(query.lo(d));
        }
        let enlargement = union_area - area;
        let better = match best {
            None => true,
            Some((_, be, ba)) => enlargement < be || (enlargement == be && area < ba),
        };
        if better {
            best = Some((i, enlargement, area));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes_of(rects: &[Rect<2>]) -> ([Vec<f64>; 2], [Vec<f64>; 2]) {
        let mut los = [Vec::new(), Vec::new()];
        let mut his = [Vec::new(), Vec::new()];
        for r in rects {
            for d in 0..2 {
                los[d].push(r.lo(d));
                his[d].push(r.hi(d));
            }
        }
        (los, his)
    }

    fn dataset(n: u64) -> Vec<Rect<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 500) as f64;
                let y = ((i * 91) % 300) as f64;
                let len = if i % 7 == 0 { 120.0 } else { 3.0 };
                Rect::new([x, y], [x + len, y + 2.0])
            })
            .collect()
    }

    #[test]
    fn matches_rect_intersects_exactly() {
        let rects = dataset(257); // deliberately not a multiple of CHUNK
        let (los, his) = planes_of(&rects);
        let queries = [
            Rect::new([0.0, 0.0], [60.0, 40.0]),
            Rect::new([250.0, 100.0], [260.0, 110.0]),
            Rect::new([-50.0, -50.0], [-1.0, -1.0]),
            Rect::new([0.0, 0.0], [500.0, 300.0]),
        ];
        for q in &queries {
            let mut out = Vec::new();
            scan_intersects(q, [&los[0], &los[1]], [&his[0], &his[1]], &mut out);
            let expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, expected, "query {q:?}");
        }
    }

    #[test]
    fn stab_matches_degenerate_rect() {
        let rects = dataset(130);
        let (los, his) = planes_of(&rects);
        for probe in [[10.0, 20.0], [333.0, 150.0], [499.0, 299.0]] {
            let p = Point::new(probe);
            let mut stab = Vec::new();
            scan_stab(&p, [&los[0], &los[1]], [&his[0], &his[1]], &mut stab);
            let mut via_rect = Vec::new();
            scan_intersects(
                &Rect::from_point(p),
                [&los[0], &los[1]],
                [&his[0], &his[1]],
                &mut via_rect,
            );
            assert_eq!(stab, via_rect);
        }
    }

    #[test]
    fn appends_without_clearing() {
        let rects = dataset(10);
        let (los, his) = planes_of(&rects);
        let q = Rect::new([0.0, 0.0], [500.0, 300.0]);
        let mut out = vec![999];
        scan_intersects(&q, [&los[0], &los[1]], [&his[0], &his[1]], &mut out);
        assert_eq!(out[0], 999);
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn min_dist_matches_rect_kernel() {
        let rects = dataset(97);
        let (los, his) = planes_of(&rects);
        let p = Point::new([250.0, -30.0]);
        let mut dists = Vec::new();
        scan_min_dist_sqr(&p, [&los[0], &los[1]], [&his[0], &his[1]], &mut dists);
        for (i, r) in rects.iter().enumerate() {
            assert!(
                (dists[i] - r.min_dist_sqr(&p)).abs() < 1e-9,
                "entry {i}: {} vs {}",
                dists[i],
                r.min_dist_sqr(&p)
            );
        }
    }

    #[test]
    fn min_enlargement_matches_rect_kernel() {
        let rects = dataset(61);
        let (los, his) = planes_of(&rects);
        for q in [
            Rect::new([100.0, 50.0], [140.0, 70.0]),
            Rect::new([0.0, 0.0], [1.0, 1.0]),
        ] {
            let got = scan_min_enlargement(&q, [&los[0], &los[1]], [&his[0], &his[1]])
                .expect("non-empty");
            let want = rects
                .iter()
                .enumerate()
                .map(|(i, r)| (i, r.enlargement(&q), r.area()))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.total_cmp(&b.2)))
                .unwrap();
            assert_eq!(got.0, want.0);
            assert!((got.1 - want.1).abs() < 1e-9);
        }
        assert!(scan_min_enlargement::<2>(
            &Rect::new([0.0, 0.0], [1.0, 1.0]),
            [&[], &[]],
            [&[], &[]]
        )
        .is_none());
    }

    #[test]
    fn one_sided_kernels_match_filters() {
        let rects = dataset(193); // crosses one CHUNK boundary with a tail
        let (los, his) = planes_of(&rects);
        for bound in [-10.0, 0.0, 123.0, 480.0, 10_000.0] {
            let mut got = Vec::new();
            scan_lo_le(&los[0], bound, &mut got);
            let want: Vec<u32> = los[0]
                .iter()
                .enumerate()
                .filter(|(_, &lo)| lo <= bound)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "scan_lo_le bound={bound}");

            let mut got = Vec::new();
            scan_hi_ge(&his[0], bound, &mut got);
            let want: Vec<u32> = his[0]
                .iter()
                .enumerate()
                .filter(|(_, &hi)| hi >= bound)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "scan_hi_ge bound={bound}");
        }
        let mut out = vec![7u32];
        scan_lo_le(&[], 0.0, &mut out);
        scan_hi_ge(&[], 0.0, &mut out);
        assert_eq!(out, vec![7], "empty planes append nothing, no clear");
    }

    #[test]
    fn empty_planes() {
        let mut out = Vec::new();
        scan_intersects::<2>(
            &Rect::new([0.0, 0.0], [1.0, 1.0]),
            [&[], &[]],
            [&[], &[]],
            &mut out,
        );
        assert!(out.is_empty());
    }
}
