//! Closed one-dimensional intervals.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed interval `[lo, hi]` on the real line.
///
/// Degenerate intervals (`lo == hi`) represent points, which lets a single
/// index store both *time range* and *event* data, one of the paper's three
/// motivating goals (§2.2).
///
/// Invariant: `lo <= hi`. Construction via [`Interval::new`] panics if the
/// invariant would be violated; [`Interval::checked`] returns `None` instead.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: Coord,
    hi: Coord,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    #[inline]
    pub fn new(lo: Coord, hi: Coord) -> Self {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Creates the interval `[lo, hi]`, returning `None` if `lo > hi` or a
    /// bound is NaN.
    #[inline]
    pub fn checked(lo: Coord, hi: Coord) -> Option<Self> {
        if lo <= hi {
            Some(Self { lo, hi })
        } else {
            None
        }
    }

    /// Creates a degenerate (point) interval `[v, v]`.
    #[inline]
    pub fn point(v: Coord) -> Self {
        Self { lo: v, hi: v }
    }

    /// Creates an interval from an unordered pair of endpoints.
    #[inline]
    pub fn from_endpoints(a: Coord, b: Coord) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Creates an interval from its center and total length.
    #[inline]
    pub fn centered(center: Coord, length: Coord) -> Self {
        let half = length.abs() / 2.0;
        Self {
            lo: center - half,
            hi: center + half,
        }
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> Coord {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> Coord {
        self.hi
    }

    /// Length (`hi - lo`); zero for point intervals.
    #[inline]
    pub fn length(&self) -> Coord {
        self.hi - self.lo
    }

    /// Midpoint.
    #[inline]
    pub fn center(&self) -> Coord {
        (self.lo + self.hi) / 2.0
    }

    /// Whether this interval is degenerate (a point).
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies within the closed interval.
    #[inline]
    pub fn contains(&self, v: Coord) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The paper's *span* predicate: `self` spans `other` iff
    /// `self.lo ≤ other.lo` and `self.hi ≥ other.hi` (§2).
    #[inline]
    pub fn spans(&self, other: &Interval) -> bool {
        self.lo <= other.lo && self.hi >= other.hi
    }

    /// Whether the closed intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of the two intervals, if non-empty.
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        Interval::checked(lo, hi)
    }

    /// Smallest interval covering both inputs.
    #[inline]
    pub fn union(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clips `self` to `bounds`. Returns `None` if they do not intersect.
    #[inline]
    pub fn clip(&self, bounds: &Interval) -> Option<Interval> {
        self.intersection(bounds)
    }

    /// The parts of `self` that lie strictly outside `bounds` — at most one
    /// piece on each side. Used when an index record is *cut* into a spanning
    /// portion and remnant portions (paper §3.1.1, Figure 3).
    pub fn subtract(&self, bounds: &Interval) -> Remnants {
        let mut out = Remnants::default();
        if self.lo < bounds.lo {
            out.push(Interval {
                lo: self.lo,
                hi: bounds.lo.min(self.hi),
            });
        }
        if self.hi > bounds.hi {
            out.push(Interval {
                lo: bounds.hi.max(self.lo),
                hi: self.hi,
            });
        }
        out
    }

    /// Additional length needed for `self` to cover `other`
    /// (`union.length - self.length`; always ≥ 0).
    #[inline]
    pub fn enlargement(&self, other: &Interval) -> Coord {
        self.union(other).length() - self.length()
    }
}

/// Up to two interval pieces produced by [`Interval::subtract`].
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct Remnants {
    items: [Option<Interval>; 2],
    len: usize,
}

impl Remnants {
    fn push(&mut self, iv: Interval) {
        self.items[self.len] = Some(iv);
        self.len += 1;
    }

    /// Number of remnant pieces (0–2).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no remnant pieces.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the pieces.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.items.iter().take(self.len).map(|x| x.unwrap())
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_bounds() {
        let iv = Interval::from_endpoints(5.0, 1.0);
        assert_eq!(iv.lo(), 1.0);
        assert_eq!(iv.hi(), 5.0);
    }

    #[test]
    #[should_panic]
    fn new_rejects_inverted() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn checked_rejects_nan() {
        assert!(Interval::checked(f64::NAN, 1.0).is_none());
        assert!(Interval::checked(0.0, f64::NAN).is_none());
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(3.0);
        assert!(p.is_point());
        assert_eq!(p.length(), 0.0);
        assert!(p.contains(3.0));
        assert!(!p.contains(3.1));
    }

    #[test]
    fn centered_interval() {
        let iv = Interval::centered(10.0, 4.0);
        assert_eq!(iv.lo(), 8.0);
        assert_eq!(iv.hi(), 12.0);
        assert_eq!(iv.center(), 10.0);
    }

    #[test]
    fn spans_is_containment() {
        let big = Interval::new(0.0, 10.0);
        let small = Interval::new(2.0, 8.0);
        assert!(big.spans(&small));
        assert!(!small.spans(&big));
        assert!(big.spans(&big), "span is reflexive");
    }

    #[test]
    fn closed_interval_touching_intersects() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Interval::point(1.0)));
    }

    #[test]
    fn disjoint_do_not_intersect() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.5, 2.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(5.0, 6.0);
        let u = a.union(&b);
        assert!(u.spans(&a) && u.spans(&b));
        assert_eq!(u, Interval::new(0.0, 6.0));
    }

    #[test]
    fn subtract_both_sides() {
        let seg = Interval::new(0.0, 10.0);
        let bounds = Interval::new(3.0, 7.0);
        let rem = seg.subtract(&bounds);
        assert_eq!(rem.len(), 2);
        let parts: Vec<_> = rem.iter().collect();
        assert_eq!(parts[0], Interval::new(0.0, 3.0));
        assert_eq!(parts[1], Interval::new(7.0, 10.0));
    }

    #[test]
    fn subtract_one_side() {
        let seg = Interval::new(0.0, 5.0);
        let bounds = Interval::new(3.0, 7.0);
        let rem = seg.subtract(&bounds);
        assert_eq!(rem.len(), 1);
        assert_eq!(rem.iter().next().unwrap(), Interval::new(0.0, 3.0));
    }

    #[test]
    fn subtract_contained_is_empty() {
        let seg = Interval::new(4.0, 5.0);
        let bounds = Interval::new(3.0, 7.0);
        assert!(seg.subtract(&bounds).is_empty());
    }

    #[test]
    fn subtract_disjoint_yields_whole() {
        let seg = Interval::new(0.0, 2.0);
        let bounds = Interval::new(3.0, 7.0);
        let rem = seg.subtract(&bounds);
        assert_eq!(rem.len(), 1);
        assert_eq!(rem.iter().next().unwrap(), seg);
    }

    #[test]
    fn enlargement_zero_when_spanning() {
        let big = Interval::new(0.0, 10.0);
        let small = Interval::new(2.0, 3.0);
        assert_eq!(big.enlargement(&small), 0.0);
        assert_eq!(small.enlargement(&big), 10.0 - 1.0);
    }
}
