//! Query-aspect-ratio (QAR) helpers for the paper's experimental setup.
//!
//! The paper evaluates search performance with query rectangles of fixed area
//! (10⁶) whose horizontal-to-vertical aspect ratio sweeps over
//! `{0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1, 2, 5, 10, 100, 1000, 10000}`
//! (§5). These helpers construct such rectangles and describe the sweep.

use crate::{Coord, Point, Rect};

/// The thirteen QAR values used in the paper's experiments (§5).
pub const PAPER_QAR_SWEEP: [Coord; 13] = [
    0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 1000.0, 10000.0,
];

/// The horizontal-to-vertical aspect ratio (`width / height`) of a 2-D
/// rectangle. Returns `None` for rectangles with zero height.
pub fn qar_of(rect: &Rect<2>) -> Option<Coord> {
    let h = rect.extent(1);
    if h == 0.0 {
        None
    } else {
        Some(rect.extent(0) / h)
    }
}

/// Builds the 2-D rectangle with the given `area` and horizontal-to-vertical
/// aspect ratio `qar`, centered on `center`:
/// `width = sqrt(area · qar)`, `height = sqrt(area / qar)`.
///
/// # Panics
/// Panics if `area` or `qar` is not strictly positive.
pub fn rect_from_area_qar(center: Point<2>, area: Coord, qar: Coord) -> Rect<2> {
    assert!(area > 0.0, "area must be positive");
    assert!(qar > 0.0, "qar must be positive");
    let w = (area * qar).sqrt();
    let h = (area / qar).sqrt();
    Rect::new(
        [center[0] - w / 2.0, center[1] - h / 2.0],
        [center[0] + w / 2.0, center[1] + h / 2.0],
    )
}

/// An iterator over the paper's QAR sweep paired with `log₁₀(QAR)` — the
/// X axis of Graphs 1–6.
#[derive(Clone, Debug, Default)]
pub struct QarSweep {
    next: usize,
}

impl QarSweep {
    /// Creates a sweep over [`PAPER_QAR_SWEEP`].
    pub fn new() -> Self {
        Self::default()
    }
}

impl Iterator for QarSweep {
    type Item = (Coord, Coord);

    fn next(&mut self) -> Option<(Coord, Coord)> {
        let q = *PAPER_QAR_SWEEP.get(self.next)?;
        self.next += 1;
        Some((q, q.log10()))
    }
}

impl ExactSizeIterator for QarSweep {
    fn len(&self) -> usize {
        PAPER_QAR_SWEEP.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_has_requested_area_and_qar() {
        for &q in &PAPER_QAR_SWEEP {
            let r = rect_from_area_qar(Point::new([50_000.0, 50_000.0]), 1_000_000.0, q);
            assert!((r.area() - 1_000_000.0).abs() < 1e-4, "area for qar {q}");
            let got = qar_of(&r).unwrap();
            assert!((got / q - 1.0).abs() < 1e-9, "qar {q} vs {got}");
        }
    }

    #[test]
    fn extreme_qar_dimensions() {
        // QAR = 0.0001 with area 1e6 gives a 10 × 100000 query: the full
        // domain height of the paper's experiments.
        let r = rect_from_area_qar(Point::new([0.0, 0.0]), 1_000_000.0, 0.0001);
        assert!((r.extent(0) - 10.0).abs() < 1e-9);
        assert!((r.extent(1) - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_matches_constant() {
        let s: Vec<_> = QarSweep::new().collect();
        assert_eq!(s.len(), 13);
        assert_eq!(s[0].0, 0.0001);
        assert_eq!(s[12].0, 10000.0);
        assert!((s[6].1 - 0.0).abs() < 1e-12, "log10(1) = 0");
    }

    #[test]
    fn qar_of_degenerate_height_is_none() {
        let seg = Rect::new([0.0, 5.0], [10.0, 5.0]);
        assert_eq!(qar_of(&seg), None);
    }

    #[test]
    #[should_panic]
    fn zero_area_panics() {
        let _ = rect_from_area_qar(Point::origin(), 0.0, 1.0);
    }
}
