//! Multi-dimensional interval and rectangle geometry for segment indexes.
//!
//! This crate provides the geometric substrate used by the
//! [Segment Index](https://dl.acm.org/doi/10.1145/115790.115806) family of
//! access methods (Kolovson & Stonebraker, SIGMOD 1991):
//!
//! * [`Interval`] — a closed one-dimensional interval `[lo, hi]`.
//! * [`Rect`] — an axis-aligned hyper-rectangle in `D` dimensions, the key
//!   type indexed by R-Trees and SR-Trees. A [`Rect`] may be degenerate in
//!   any subset of dimensions, so it uniformly represents points, line
//!   segments, and boxes.
//! * [`Point`] — a location in `D` dimensions.
//!
//! The *span* predicate ([`Interval::spans`], [`Rect::spans_in_dim`],
//! [`Rect::spans_any_dim`]) is the paper's central geometric notion: interval
//! `I₁` spans `I₂` iff `I₁.lo ≤ I₂.lo` and `I₁.hi ≥ I₂.hi`. A record is
//! stored high in an SR-Tree exactly when it spans a child region in at least
//! one dimension.
//!
//! All coordinates are `f64`. Intervals are closed on both ends, matching the
//! paper's treatment of historical data (an employee's salary period includes
//! both its first and last day).
//!
//! ```
//! use segidx_geom::{Interval, Rect};
//!
//! // A salary period: a horizontal segment in (time, salary) space.
//! let period = Rect::from_intervals([Interval::new(1975.0, 1989.0),
//!                                    Interval::point(30_000.0)]);
//! // A node region it spans in the time dimension.
//! let node = Rect::new([1980.0, 25_000.0], [1985.0, 40_000.0]);
//! assert!(period.spans_in_dim(&node, 0));
//! assert!(period.spans_any_dim(&node));
//!
//! // Cutting against a larger parent region (paper Figure 3).
//! let parent = Rect::new([1978.0, 20_000.0], [1995.0, 50_000.0]);
//! let cut = period.cut(&parent);
//! assert_eq!(cut.remnants.len(), 1); // the part before 1978
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod interval;
mod point;
mod qar;
mod rect;
mod scan;

pub use interval::{Interval, Remnants};
pub use point::Point;
pub use qar::{qar_of, rect_from_area_qar, QarSweep, PAPER_QAR_SWEEP};
pub use rect::{CutResult, Rect};
pub use scan::{
    scan_hi_ge, scan_intersects, scan_lo_le, scan_min_dist_sqr, scan_min_enlargement, scan_stab,
};

/// Coordinate scalar used throughout the crate.
pub type Coord = f64;

/// A rectangle in one dimension (a line segment on the number line).
pub type Rect1 = Rect<1>;
/// A rectangle in two dimensions (the paper's experimental setting).
pub type Rect2 = Rect<2>;
/// A rectangle in three dimensions.
pub type Rect3 = Rect<3>;
