//! Axis-aligned hyper-rectangles.

use crate::{Coord, Interval, Point};
use serde::de::{Error as DeError, SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// An axis-aligned hyper-rectangle in `D` dimensions: the product of one
/// closed [`Interval`] per dimension.
///
/// This is the index-record geometry of the R-Tree family. A `Rect` that is
/// degenerate in some dimensions represents lower-dimensional data — e.g. the
/// paper's historical line segments are `Rect<2>` values whose Y interval is
/// a point ([Figure 1]).
///
/// [Figure 1]: https://dl.acm.org/doi/10.1145/115790.115806
#[derive(Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    lo: [Coord; D],
    hi: [Coord; D],
}

// Serde cannot derive (De)Serialize for const-generic arrays, so a Rect is
// encoded as the flat sequence [lo_0, …, lo_{D-1}, hi_0, …, hi_{D-1}].
impl<const D: usize> Serialize for Rect<D> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2 * D))?;
        for v in self.lo.iter().chain(self.hi.iter()) {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<'de, const D: usize> Deserialize<'de> for Rect<D> {
    fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        struct RectVisitor<const D: usize>;

        impl<'de, const D: usize> Visitor<'de> for RectVisitor<D> {
            type Value = Rect<D>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a sequence of {} floats", 2 * D)
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Rect<D>, A::Error> {
                let mut lo = [0.0; D];
                let mut hi = [0.0; D];
                for (i, slot) in lo.iter_mut().chain(hi.iter_mut()).enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| A::Error::invalid_length(i, &self))?;
                }
                Rect::checked(lo, hi).ok_or_else(|| A::Error::custom("invalid rect bounds"))
            }
        }

        deserializer.deserialize_seq(RectVisitor)
    }
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from per-dimension lower and upper bounds.
    ///
    /// # Panics
    /// Panics if `lo[d] > hi[d]` (or a bound is NaN) in any dimension.
    #[inline]
    pub fn new(lo: [Coord; D], hi: [Coord; D]) -> Self {
        for d in 0..D {
            assert!(
                lo[d] <= hi[d],
                "invalid rect bounds in dim {d}: [{}, {}]",
                lo[d],
                hi[d]
            );
        }
        Self { lo, hi }
    }

    /// Creates a rectangle, returning `None` on invalid bounds.
    #[inline]
    pub fn checked(lo: [Coord; D], hi: [Coord; D]) -> Option<Self> {
        for d in 0..D {
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail this check
            if !(lo[d] <= hi[d]) {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// Creates a rectangle from one interval per dimension.
    #[inline]
    pub fn from_intervals(ivs: [Interval; D]) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = ivs[d].lo();
            hi[d] = ivs[d].hi();
        }
        Self { lo, hi }
    }

    /// The degenerate rectangle at a point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Self {
            lo: *p.coords(),
            hi: *p.coords(),
        }
    }

    /// Lower bound in dimension `d`.
    #[inline]
    pub fn lo(&self, d: usize) -> Coord {
        self.lo[d]
    }

    /// Upper bound in dimension `d`.
    #[inline]
    pub fn hi(&self, d: usize) -> Coord {
        self.hi[d]
    }

    /// All lower bounds.
    #[inline]
    pub fn lo_coords(&self) -> &[Coord; D] {
        &self.lo
    }

    /// All upper bounds.
    #[inline]
    pub fn hi_coords(&self) -> &[Coord; D] {
        &self.hi
    }

    /// The extent of the rectangle in dimension `d` as an [`Interval`].
    #[inline]
    pub fn interval(&self, d: usize) -> Interval {
        Interval::new(self.lo[d], self.hi[d])
    }

    /// Side length in dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> Coord {
        self.hi[d] - self.lo[d]
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = (self.lo[d] + self.hi[d]) / 2.0;
        }
        Point::new(c)
    }

    /// Product of all side lengths. Zero for rectangles degenerate in any
    /// dimension.
    #[inline]
    pub fn area(&self) -> Coord {
        let mut a = 1.0;
        for d in 0..D {
            a *= self.hi[d] - self.lo[d];
        }
        a
    }

    /// Sum of all side lengths (the "margin", used by some split heuristics).
    #[inline]
    pub fn margin(&self) -> Coord {
        let mut m = 0.0;
        for d in 0..D {
            m += self.hi[d] - self.lo[d];
        }
        m
    }

    /// Whether the rectangle is degenerate in every dimension.
    #[inline]
    pub fn is_point(&self) -> bool {
        (0..D).all(|d| self.lo[d] == self.hi[d])
    }

    /// Whether `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// Whether `other` lies entirely inside `self` (containment in *every*
    /// dimension).
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= other.lo[d] && self.hi[d] >= other.hi[d])
    }

    /// Whether the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Intersection of the rectangles, if non-empty.
    pub fn intersection(&self, other: &Rect<D>) -> Option<Rect<D>> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] > hi[d] {
                return None;
            }
        }
        Some(Rect { lo, hi })
    }

    /// Smallest rectangle covering both inputs (the R-Tree "union" /
    /// minimum bounding rectangle of the pair).
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = self.lo[d].min(other.lo[d]);
            hi[d] = self.hi[d].max(other.hi[d]);
        }
        Rect { lo, hi }
    }

    /// Area increase required for `self` to cover `other`:
    /// `area(self ∪ other) − area(self)`. This is Guttman's ChooseLeaf
    /// criterion, which the SR-Tree inherits (paper §3.1.1, footnote 1).
    #[inline]
    pub fn enlargement(&self, other: &Rect<D>) -> Coord {
        self.union(other).area() - self.area()
    }

    /// Whether `self` spans `other` in dimension `d`
    /// (`self[d].lo ≤ other[d].lo` and `self[d].hi ≥ other[d].hi`).
    #[inline]
    pub fn spans_in_dim(&self, other: &Rect<D>, d: usize) -> bool {
        self.lo[d] <= other.lo[d] && self.hi[d] >= other.hi[d]
    }

    /// The paper's spanning predicate for `K ≥ 1` dimensions (§3.1.1): a
    /// record qualifies as a spanning index record for a branch region if it
    /// **intersects** the region and spans it **in at least one dimension**
    /// ("in either or both dimensions" for `K = 2`).
    pub fn spans_any_dim(&self, other: &Rect<D>) -> bool {
        self.intersects(other) && (0..D).any(|d| self.spans_in_dim(other, d))
    }

    /// Dimensions in which `self` spans `other`.
    pub fn spanning_dims(&self, other: &Rect<D>) -> impl Iterator<Item = usize> + '_ {
        let other = *other;
        (0..D).filter(move |&d| self.spans_in_dim(&other, d))
    }

    /// Clips `self` to `bounds` (the *spanning portion* of a cut record,
    /// paper §3.1.1 / Figure 3). `None` if disjoint.
    #[inline]
    pub fn clip(&self, bounds: &Rect<D>) -> Option<Rect<D>> {
        self.intersection(bounds)
    }

    /// Splits `self` into the portion inside `bounds` plus the *remnant
    /// portions* outside it, per the paper's record-cutting rule
    /// (§3.1.1, Figure 3).
    ///
    /// Remnants are produced by guillotine cuts, one dimension at a time, so
    /// at most `2·D` disjoint pieces are returned and their disjoint union
    /// with the clipped portion exactly covers `self`.
    pub fn cut(&self, bounds: &Rect<D>) -> CutResult<D> {
        let Some(spanning) = self.intersection(bounds) else {
            return CutResult {
                spanning: None,
                remnants: vec![*self],
            };
        };
        let mut remnants = Vec::new();
        let mut core = *self;
        for d in 0..D {
            if core.lo[d] < bounds.lo[d] {
                let mut piece = core;
                piece.hi[d] = bounds.lo[d];
                remnants.push(piece);
                core.lo[d] = bounds.lo[d];
            }
            if core.hi[d] > bounds.hi[d] {
                let mut piece = core;
                piece.lo[d] = bounds.hi[d];
                remnants.push(piece);
                core.hi[d] = bounds.hi[d];
            }
        }
        debug_assert_eq!(core, spanning);
        CutResult {
            spanning: Some(spanning),
            remnants,
        }
    }

    /// Stretches `self` minimally so that it covers `other`, in place.
    #[inline]
    pub fn expand_to_cover(&mut self, other: &Rect<D>) {
        for d in 0..D {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Overlap area between the rectangles (zero when disjoint).
    pub fn overlap_area(&self, other: &Rect<D>) -> Coord {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Squared Euclidean distance from `p` to the nearest point of the
    /// rectangle (zero if `p` is inside). This is the `MINDIST` bound of
    /// best-first nearest-neighbor search over R-Trees.
    pub fn min_dist_sqr(&self, p: &Point<D>) -> Coord {
        let mut acc = 0.0;
        for d in 0..D {
            let v = p[d];
            let delta = if v < self.lo[d] {
                self.lo[d] - v
            } else if v > self.hi[d] {
                v - self.hi[d]
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }

    /// Euclidean distance from `p` to the nearest point of the rectangle.
    pub fn min_dist(&self, p: &Point<D>) -> Coord {
        self.min_dist_sqr(p).sqrt()
    }
}

/// The outcome of cutting a rectangle against a bounding region
/// ([`Rect::cut`]).
#[derive(Clone, Debug, PartialEq)]
pub struct CutResult<const D: usize> {
    /// The portion of the record inside the bounds (`None` if disjoint).
    pub spanning: Option<Rect<D>>,
    /// The portions outside the bounds, to be reinserted from the root.
    pub remnants: Vec<Rect<D>>,
}

impl<const D: usize> fmt::Debug for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect{{")?;
        for d in 0..D {
            if d > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{}, {}]", self.lo[d], self.hi[d])?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(x0: f64, x1: f64, y0: f64, y1: f64) -> Rect<2> {
        Rect::new([x0, y0], [x1, y1])
    }

    #[test]
    fn area_and_margin() {
        let r = r2(0.0, 4.0, 0.0, 3.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.margin(), 7.0);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = Rect::new([1.0, 0.0], [0.0, 1.0]);
    }

    #[test]
    fn degenerate_segment_has_zero_area() {
        let seg = r2(0.0, 100.0, 5.0, 5.0);
        assert_eq!(seg.area(), 0.0);
        assert!(!seg.is_point());
        assert_eq!(seg.margin(), 100.0);
    }

    #[test]
    fn contains_and_intersects() {
        let big = r2(0.0, 10.0, 0.0, 10.0);
        let small = r2(2.0, 3.0, 2.0, 3.0);
        assert!(big.contains_rect(&small));
        assert!(big.intersects(&small));
        assert!(!small.contains_rect(&big));
        let outside = r2(20.0, 30.0, 0.0, 1.0);
        assert!(!big.intersects(&outside));
    }

    #[test]
    fn touching_edges_intersect() {
        let a = r2(0.0, 1.0, 0.0, 1.0);
        let b = r2(1.0, 2.0, 0.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn union_enlargement() {
        let a = r2(0.0, 2.0, 0.0, 2.0);
        let b = r2(3.0, 4.0, 0.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, r2(0.0, 4.0, 0.0, 2.0));
        assert_eq!(a.enlargement(&b), 8.0 - 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn spanning_semantics_horizontal_segment() {
        // A horizontal segment spanning a node's X range but located at a Y
        // inside the node qualifies; one outside the node's Y range does not
        // (it does not intersect the node).
        let node = r2(10.0, 20.0, 10.0, 20.0);
        let seg_inside = r2(0.0, 30.0, 15.0, 15.0);
        let seg_outside = r2(0.0, 30.0, 5.0, 5.0);
        assert!(seg_inside.spans_in_dim(&node, 0));
        assert!(seg_inside.spans_any_dim(&node));
        assert!(seg_outside.spans_in_dim(&node, 0));
        assert!(!seg_outside.spans_any_dim(&node));
    }

    #[test]
    fn spanning_dims_reports_each_dimension() {
        let node = r2(10.0, 20.0, 10.0, 20.0);
        let wide = r2(0.0, 30.0, 12.0, 18.0);
        let dims: Vec<_> = wide.spanning_dims(&node).collect();
        assert_eq!(dims, vec![0]);
        let covering = r2(0.0, 30.0, 0.0, 30.0);
        let dims: Vec<_> = covering.spanning_dims(&node).collect();
        assert_eq!(dims, vec![0, 1]);
    }

    #[test]
    fn cut_contained_has_no_remnants() {
        let r = r2(2.0, 3.0, 2.0, 3.0);
        let bounds = r2(0.0, 10.0, 0.0, 10.0);
        let cut = r.cut(&bounds);
        assert_eq!(cut.spanning, Some(r));
        assert!(cut.remnants.is_empty());
    }

    #[test]
    fn cut_segment_one_side() {
        // Paper Figure 3: a segment spanning node C but extending past one
        // border of C's parent is cut into a spanning portion and a single
        // remnant.
        let seg = r2(0.0, 100.0, 5.0, 5.0);
        let parent = r2(20.0, 200.0, 0.0, 10.0);
        let cut = seg.cut(&parent);
        assert_eq!(cut.spanning, Some(r2(20.0, 100.0, 5.0, 5.0)));
        assert_eq!(cut.remnants, vec![r2(0.0, 20.0, 5.0, 5.0)]);
    }

    #[test]
    fn cut_rect_all_sides() {
        let r = r2(0.0, 10.0, 0.0, 10.0);
        let bounds = r2(4.0, 6.0, 4.0, 6.0);
        let cut = r.cut(&bounds);
        let spanning = cut.spanning.unwrap();
        assert_eq!(spanning, bounds);
        assert_eq!(cut.remnants.len(), 4);
        // Pieces are mutually disjoint and cover area(r) - area(bounds).
        let total: f64 = cut.remnants.iter().map(|p| p.area()).sum();
        assert!((total - (100.0 - 4.0)).abs() < 1e-9);
        for (i, a) in cut.remnants.iter().enumerate() {
            for b in cut.remnants.iter().skip(i + 1) {
                assert_eq!(a.overlap_area(b), 0.0);
            }
        }
    }

    #[test]
    fn cut_disjoint_returns_whole_as_remnant() {
        let r = r2(0.0, 1.0, 0.0, 1.0);
        let bounds = r2(5.0, 6.0, 5.0, 6.0);
        let cut = r.cut(&bounds);
        assert!(cut.spanning.is_none());
        assert_eq!(cut.remnants, vec![r]);
    }

    #[test]
    fn expand_to_cover() {
        let mut r = r2(0.0, 1.0, 0.0, 1.0);
        r.expand_to_cover(&r2(5.0, 6.0, -2.0, 0.5));
        assert_eq!(r, r2(0.0, 6.0, -2.0, 1.0));
    }

    #[test]
    fn min_dist_inside_edge_corner() {
        let r = r2(0.0, 10.0, 0.0, 10.0);
        // Inside.
        assert_eq!(r.min_dist_sqr(&crate::Point::new([5.0, 5.0])), 0.0);
        // Straight out from an edge.
        assert_eq!(r.min_dist(&crate::Point::new([15.0, 5.0])), 5.0);
        // Diagonal from a corner: 3-4-5 triangle.
        assert_eq!(r.min_dist(&crate::Point::new([13.0, -4.0])), 5.0);
        // On the boundary counts as inside.
        assert_eq!(r.min_dist_sqr(&crate::Point::new([10.0, 0.0])), 0.0);
    }

    #[test]
    fn one_dimensional_rect() {
        let a: Rect<1> = Rect::new([0.0], [10.0]);
        let b: Rect<1> = Rect::new([2.0], [3.0]);
        assert!(a.spans_any_dim(&b));
        assert_eq!(a.area(), 10.0);
    }

    #[test]
    fn three_dimensional_rect() {
        let a: Rect<3> = Rect::new([0.0; 3], [2.0; 3]);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        let b: Rect<3> = Rect::new([1.0; 3], [3.0; 3]);
        assert_eq!(a.overlap_area(&b), 1.0);
    }
}
