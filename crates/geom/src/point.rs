//! Points in `D` dimensions.

use crate::{Coord, Rect};
use serde::de::{Error as DeError, SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::ops::Index;

/// A location in `D`-dimensional space.
///
/// Event data items (paper §2.2) are points in all dimensions; a point is
/// indexed as the degenerate rectangle returned by [`Point::to_rect`].
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [Coord; D],
}

// Serde cannot derive (De)Serialize for const-generic arrays, so a Point is
// encoded as the sequence of its coordinates.
impl<const D: usize> Serialize for Point<D> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(D))?;
        for v in &self.coords {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<'de, const D: usize> Deserialize<'de> for Point<D> {
    fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        struct PointVisitor<const D: usize>;

        impl<'de, const D: usize> Visitor<'de> for PointVisitor<D> {
            type Value = Point<D>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a sequence of {D} floats")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Point<D>, A::Error> {
                let mut coords = [0.0; D];
                for (i, slot) in coords.iter_mut().enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| A::Error::invalid_length(i, &self))?;
                }
                Ok(Point::new(coords))
            }
        }

        deserializer.deserialize_seq(PointVisitor)
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(coords: [Coord; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Coordinate in dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize) -> Coord {
        self.coords[d]
    }

    /// All coordinates.
    #[inline]
    pub fn coords(&self) -> &[Coord; D] {
        &self.coords
    }

    /// The degenerate rectangle `[p, p]` in every dimension.
    #[inline]
    pub fn to_rect(self) -> Rect<D> {
        Rect::new(self.coords, self.coords)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point<D>) -> Coord {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<Coord>()
            .sqrt()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = Coord;

    #[inline]
    fn index(&self, d: usize) -> &Coord {
        &self.coords[d]
    }
}

impl<const D: usize> From<[Coord; D]> for Point<D> {
    #[inline]
    fn from(coords: [Coord; D]) -> Self {
        Self { coords }
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_rect_is_degenerate() {
        let p = Point::new([1.0, 2.0]);
        let r = p.to_rect();
        assert!(r.is_point());
        assert!(r.contains_point(&p));
        assert_eq!(r.area(), 0.0);
    }

    #[test]
    fn distance() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn indexing() {
        let p = Point::new([7.0, 9.0, 11.0]);
        assert_eq!(p[0], 7.0);
        assert_eq!(p.coord(2), 11.0);
    }
}
