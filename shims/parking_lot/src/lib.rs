//! Offline shim of `parking_lot`: a [`Mutex`] with parking_lot's
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that recovers from poisoning (parking_lot
/// semantics: a panicking holder does not wedge the lock).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}
