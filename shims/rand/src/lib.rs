//! Offline shim of the `rand` 0.10 surface this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over
//! float and integer ranges.
//!
//! The generator is a real, well-distributed PRNG — workload tests make
//! statistical assertions (sample means within fractions of a percent),
//! so quality matters here even though the API is a shim.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Marker trait mirroring `rand::Rng` (all functionality lives in
/// [`RngExt`], as in rand 0.10).
pub trait Rng: RngCore {}
impl<T: RngCore + ?Sized> Rng for T {}

/// A range a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// 53-bit uniform draw in `[0, 1)`.
#[inline]
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, far below what any in-repo test can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive sample range");
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $ty
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (rand 0.10 naming).
pub trait RngExt: Rng {
    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}
impl<T: Rng> RngExt for T {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0.0_f64..1.0).to_bits(),
                b.random_range(0.0_f64..1.0).to_bits()
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            a.random_range(0u64..u64::MAX),
            c.random_range(0u64..u64::MAX)
        );
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| rng.random_range(0.0_f64..10.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(0u8..=4);
            assert!(w <= 4);
        }
    }
}
