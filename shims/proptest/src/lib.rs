//! Offline shim of `proptest`: the macro and strategy surface this
//! workspace's property tests use, backed by a deterministic random-case
//! runner (no shrinking — a failing case reports its seed instead).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Generates random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);
    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }
    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe strategy view, used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }
    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);
    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Weighted union of strategies (built by `prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }
    impl<V> OneOf<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { arms, total }
        }
    }
    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.random_range(0u32..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);
    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// `prop_assume!` filtered the inputs out; try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic seed for (test name, case index): FNV-1a over the
    /// name, mixed with the case counter.
    pub fn case_seed(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// The RNG for one case.
    pub fn rng_for(seed: u64) -> super::strategy::TestRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                let mut executed: u32 = 0;
                while executed < config.cases {
                    let seed = $crate::test_runner::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    case += 1;
                    let mut __rng = $crate::test_runner::rng_for(seed);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: $crate::test_runner::TestCaseResult =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => executed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejects += 1;
                            assert!(
                                rejects <= config.max_global_rejects,
                                "proptest: too many rejected cases ({rejects})"
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case failed (case {}, seed {seed:#x}):\n{msg}",
                                case - 1
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted (or unweighted) union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(
                (
                    $weight as u32,
                    $crate::strategy::Strategy::boxed($strat),
                )
            ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(
                (1u32, $crate::strategy::Strategy::boxed($strat))
            ),+
        ])
    };
}

/// Asserts a condition, failing the current case (not panicking) so the
/// runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal (by `PartialEq`), failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts two values are unequal, failing the case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::string::String::from(stringify!($cond)),
                ),
            );
        }
    };
}
