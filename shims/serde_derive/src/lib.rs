//! Offline shim of serde's derive macros.
//!
//! Emits trait impls whose bodies abort at runtime: nothing in this
//! workspace serializes through serde (persistence uses its own byte
//! codec), so the derives only need to satisfy the type system. All
//! derive targets in-repo are non-generic, which keeps the generated
//! impl trivial.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first top-level `struct` or
/// `enum` keyword, skipping attributes (including `#[serde(...)]`) and
/// visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            // `#` and `[...]` attribute fragments, visibility groups.
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct or enum name found in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize<S: ::serde::Serializer>(&self, _serializer: S)\n\
                -> ::core::result::Result<S::Ok, S::Error> {{\n\
                ::core::unimplemented!(\"serde shim: runtime serialization is not wired up\")\n\
            }}\n\
        }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
            fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                -> ::core::result::Result<Self, D::Error> {{\n\
                ::core::unimplemented!(\"serde shim: runtime deserialization is not wired up\")\n\
            }}\n\
        }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}
