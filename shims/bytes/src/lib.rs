//! Offline shim of the `bytes` crate: a growable [`BytesMut`] buffer and
//! the little-endian [`Buf`]/[`BufMut`] accessors the storage layer uses.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Clears the buffer without releasing its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Appends `slice` to the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }

    /// Resizes the buffer to `len`, filling new bytes with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.inner.resize(len, value);
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let (head, rest) = $self.split_at(N);
        let v = <$ty>::from_le_bytes(head.try_into().expect("exact size"));
        *$self = rest;
        v
    }};
}

/// Sequential read access to a byte slice; every `get_*` advances the
/// cursor past the bytes read. Panics if the source is too short, like
/// the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        get_le!(self, u8)
    }
    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }
    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }
    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }
}

/// Sequential write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);
    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u64_le(u64::MAX - 3);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u64_le(), u64::MAX - 3);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn resize_and_clear() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"abc");
        buf.resize(8, 0);
        assert_eq!(&buf[..], b"abc\0\0\0\0\0");
        buf.clear();
        assert!(buf.is_empty());
    }
}
