//! Offline shim of the `serde` data model: just enough of the trait
//! surface for this workspace's derives and manual sequence impls to
//! compile. No runtime serialization happens anywhere in the repo (the
//! paged persistence layer uses its own byte codec), so data-format
//! backends are intentionally absent.

pub mod ser {
    use core::fmt::Display;

    /// Error produced by a serializer.
    pub trait Error: Sized + core::fmt::Debug + Display {
        /// Custom error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Sequence serializer returned by [`Serializer::serialize_seq`].
    pub trait SerializeSeq {
        /// Output produced on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// A data-format serializer.
    pub trait Serializer: Sized {
        /// Output produced on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Sequence sub-serializer.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

        /// Begins a sequence of `len` elements.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u32`.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    }

    /// A serializable type.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    impl Serialize for bool {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bool(*self)
        }
    }
    impl Serialize for u32 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_u32(*self)
        }
    }
    impl Serialize for u64 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_u64(*self)
        }
    }
    impl Serialize for f64 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_f64(*self)
        }
    }
    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }
}

pub mod de {
    use core::fmt::{self, Display};

    /// A description of what a deserializer expected (used in errors).
    pub trait Expected {
        /// Writes the expectation, e.g. "a sequence of 4 floats".
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
    }

    impl<'de, T: Visitor<'de>> Expected for T {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.expecting(formatter)
        }
    }

    /// Error produced by a deserializer.
    pub trait Error: Sized + core::fmt::Debug + Display {
        /// Custom error from a message.
        fn custom<T: Display>(msg: T) -> Self;
        /// A sequence ended after `len` elements when more were expected.
        fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
            struct Adapter<'a>(&'a dyn Expected);
            impl fmt::Display for Adapter<'_> {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    self.0.fmt(f)
                }
            }
            Error::custom(format_args!(
                "invalid length {len}, expected {}",
                Adapter(exp)
            ))
        }
    }

    /// Drives deserialization of one value.
    pub trait Visitor<'de>: Sized {
        /// The value produced.
        type Value;
        /// Writes what this visitor expects to see.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
        /// Visits a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
            let _ = seq;
            Err(Error::custom("unexpected sequence"))
        }
        /// Visits a `bool`.
        fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom("unexpected bool"))
        }
        /// Visits a `u64`.
        fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom("unexpected u64"))
        }
        /// Visits an `f64`.
        fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom("unexpected f64"))
        }
    }

    /// Access to the elements of a sequence being deserialized.
    pub trait SeqAccess<'de> {
        /// Error type.
        type Error: Error;
        /// Returns the next element, or `None` at the end.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    }

    /// A data-format deserializer.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Deserializes a sequence.
        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `bool`.
        fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `u64`.
        fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `f64`.
        fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    }

    /// A deserializable type.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    macro_rules! impl_primitive_de {
        ($ty:ty, $deserialize:ident, $visit:ident, $expect:literal) => {
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($expect)
                        }
                        fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$deserialize(V)
                }
            }
        };
    }
    impl_primitive_de!(bool, deserialize_bool, visit_bool, "a bool");
    impl_primitive_de!(u64, deserialize_u64, visit_u64, "a u64");
    impl_primitive_de!(f64, deserialize_f64, visit_f64, "an f64");
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
