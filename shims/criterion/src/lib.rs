//! Offline shim of `criterion`: the harness API this workspace's benches
//! use, with real wall-clock measurement (warm-up, then timed samples,
//! median/mean reporting). Set `CRITERION_JSON=<path>` to append one JSON
//! line per benchmark — used to capture reference numbers in `results/`.

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement settings shared by [`Criterion`] and groups.
#[derive(Clone, Debug)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    cfg: BenchConfig,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// No-op in the shim (CLI filtering is not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            cfg: BenchConfig::default(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.cfg.clone();
        run_benchmark("", &id.into().0, &cfg, None, f);
        self
    }
}

/// Throughput annotation: per-iteration work for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    cfg: BenchConfig,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into().0, &self.cfg, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    cfg: BenchConfig,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`: warm-up, then `sample_size` timed samples of
    /// equal iteration counts sized to fill the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let budget_ns = self.cfg.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.cfg.sample_size as f64;
        let iters = ((per_sample_ns / est_ns) as u64).max(1);

        self.samples.clear();
        self.iters_per_sample = iters;
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F>(group: &str, id: &str, cfg: &BenchConfig, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        cfg: cfg.clone(),
        samples: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{full:<50} (no measurement: closure never called iter)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>12.0} B/s", n as f64 * 1e9 / median)
        }
        None => String::new(),
    };
    println!(
        "{full:<50} time: [{} {} {}]{rate}",
        format_time(min),
        format_time(median),
        format_time(max)
    );

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let thrpt = match throughput {
                Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => n,
                None => 0,
            };
            let _ = writeln!(
                file,
                "{{\"benchmark\":\"{full}\",\"median_ns\":{median:.2},\"mean_ns\":{mean:.2},\
                 \"min_ns\":{min:.2},\"max_ns\":{max:.2},\"samples\":{},\
                 \"iters_per_sample\":{},\"throughput_per_iter\":{thrpt}}}",
                sorted.len(),
                b.iters_per_sample,
            );
        }
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-target `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
