//! Tier-1 slice of the deterministic interleaving stress harness: a few
//! seeds, small configuration, all four paper variants. CI's release-mode
//! stress job runs the full `stress_concurrent --seeds 32` sweep; this
//! keeps a canary in the default test suite.

use segidx_bench::interleave::{stress_seed, StressConfig};

#[test]
fn interleaving_stress_small_seeds() {
    let cfg = StressConfig {
        initial: 200,
        ops: 300,
        readers: 2,
        ..StressConfig::default()
    };
    for seed in 0..4u64 {
        let outcome = stress_seed(seed, &cfg);
        assert!(
            outcome.failures.is_empty(),
            "seed {seed}: snapshot-isolation violations: {:#?}",
            outcome.failures
        );
        assert!(outcome.observations > 0, "seed {seed}: readers observed");
        assert!(
            outcome.epochs >= 4,
            "seed {seed}: every variant published at least one epoch"
        );
    }
}
