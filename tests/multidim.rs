//! The engine across dimensionalities: the 1-D rule-lock special case of
//! paper §2.2 and 3-D boxes, differentially tested against brute force.

use segidx_core::{IndexConfig, IntervalIndex, RTree, RecordId, SRTree, Tree};
use segidx_geom::{Interval, Rect};

#[test]
fn one_dimensional_interval_index() {
    // Mixed interval and point predicates over a salary-like domain —
    // exactly the rule-lock workload of §2.2.
    let mut records: Vec<(Rect<1>, RecordId)> = Vec::new();
    for i in 0..5_000u64 {
        let lo = ((i * 131) % 90_000) as f64;
        let len = match i % 10 {
            0 => 0.0,      // event/point predicate
            1 => 40_000.0, // very long predicate
            _ => 25.0 + (i % 400) as f64,
        };
        records.push((
            Rect::from_intervals([Interval::new(lo, lo + len)]),
            RecordId(i),
        ));
    }

    let mut r: RTree<1> = RTree::new();
    let mut sr: SRTree<1> = SRTree::new();
    for (rect, id) in &records {
        r.insert(*rect, *id);
        sr.insert(*rect, *id);
    }
    assert!(r.check_invariants().is_empty());
    assert!(sr.check_invariants().is_empty());
    assert!(
        sr.stats().spanning_stores > 0,
        "long 1-D predicates become spanning records"
    );

    for probe in [0.0, 500.0, 42_000.0, 89_999.0, 130_000.0] {
        let q = Rect::from_intervals([Interval::point(probe)]);
        let mut expected: Vec<RecordId> = records
            .iter()
            .filter(|(rect, _)| rect.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(r.search(&q), expected, "R-Tree stab at {probe}");
        assert_eq!(sr.search(&q), expected, "SR-Tree stab at {probe}");
    }
}

#[test]
fn three_dimensional_boxes() {
    // Spatio-temporal boxes: (x, y, time) with skewed time extents.
    let mut records: Vec<(Rect<3>, RecordId)> = Vec::new();
    for i in 0..4_000u64 {
        let x = ((i * 37) % 1_000) as f64;
        let y = ((i * 91) % 1_000) as f64;
        let t = ((i * 17) % 1_000) as f64;
        let dur = if i % 12 == 0 { 500.0 } else { 5.0 };
        records.push((
            Rect::new([x, y, t], [x + 4.0, y + 4.0, (t + dur).min(1_000.0)]),
            RecordId(i),
        ));
    }

    for config in [IndexConfig::rtree(), IndexConfig::srtree()] {
        let segment = config.segment;
        let mut tree: Tree<3> = Tree::new(config);
        for (rect, id) in &records {
            tree.insert(*rect, *id);
        }
        tree.assert_invariants();

        let queries = [
            Rect::new([0.0, 0.0, 0.0], [100.0, 100.0, 1_000.0]),
            Rect::new([400.0, 400.0, 500.0], [600.0, 600.0, 501.0]),
            Rect::new([0.0, 0.0, 250.0], [1_000.0, 1_000.0, 250.0]), // time slice
        ];
        for q in &queries {
            let mut expected: Vec<RecordId> = records
                .iter()
                .filter(|(rect, _)| rect.intersects(q))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            assert_eq!(tree.search(q), expected, "segment={segment} query {q:?}");
        }

        // Deletes work in 3-D too.
        for (rect, id) in records.iter().take(500) {
            assert!(tree.delete(rect, *id), "segment={segment}");
        }
        tree.assert_invariants();
        assert_eq!(tree.len(), records.len() - 500);
    }
}

#[test]
fn three_dimensional_skeleton_and_bulk() {
    let domain: Rect<3> = Rect::new([0.0; 3], [1_000.0; 3]);
    let records: Vec<(Rect<3>, RecordId)> = (0..3_000u64)
        .map(|i| {
            let p = [
                ((i * 37) % 990) as f64,
                ((i * 91) % 990) as f64,
                ((i * 17) % 990) as f64,
            ];
            (
                Rect::new(p, [p[0] + 8.0, p[1] + 8.0, p[2] + 8.0]),
                RecordId(i),
            )
        })
        .collect();

    // Skeleton build in 3-D.
    let spec = segidx_core::SkeletonSpec::uniform(domain, records.len());
    let mut config = IndexConfig::srtree();
    config.coalesce = Some(Default::default());
    let mut skel = segidx_core::build_skeleton(config, &spec);
    for (rect, id) in &records {
        skel.insert(*rect, *id);
    }
    skel.assert_invariants();

    // Bulk load in 3-D.
    let packed = segidx_core::bulk::bulk_load(IndexConfig::rtree(), records.clone());
    packed.assert_invariants();

    let q = Rect::new([100.0; 3], [400.0; 3]);
    assert_eq!(skel.search(&q), packed.search(&q));
    let mut expected: Vec<RecordId> = records
        .iter()
        .filter(|(rect, _)| rect.intersects(&q))
        .map(|(_, id)| *id)
        .collect();
    expected.sort_unstable();
    assert_eq!(skel.search(&q), expected);
}
