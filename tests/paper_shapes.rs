//! Scaled-down reproduction of the paper's evaluation, asserting the shape
//! claims that are robust at small scale. The full 200K-tuple runs are
//! produced by `cargo run --release -p segidx-bench --bin reproduce`.

use segidx_bench::{check_paper_shape, run_experiment, Experiment, Graph, Variant};

fn small(graph: Graph) -> Experiment {
    Experiment {
        tuples: 8_000,
        queries_per_qar: 10,
        ..Experiment::paper(graph)
    }
}

#[test]
fn graph3_skeleton_sr_wins_vertical_queries() {
    // Graph 3 (exponential lengths, uniform Y) is the paper's flagship
    // interval result. The SR advantage needs enough data for spanning
    // records to accumulate, so this test runs a mid-size input.
    let result = run_experiment(&Experiment {
        tuples: 20_000,
        queries_per_qar: 10,
        ..Experiment::paper(Graph::G3)
    });
    let checks = check_paper_shape(&result);
    for c in &checks {
        if c.critical {
            assert!(c.passed, "{}: {} ({})", c.name, c.claim, c.detail);
        }
    }
    // Skeleton variants beat non-Skeleton ones in the vertical range.
    let vqar = |v: Variant| result.series_for(v).mean_where(|p| p.log10_qar < 0.0);
    assert!(vqar(Variant::SkeletonSRTree) < vqar(Variant::RTree));
}

#[test]
fn graph1_r_and_sr_identical_for_short_intervals() {
    // With uniformly short intervals no spanning records exist, so the
    // SR-Tree behaves *identically* to the R-Tree (paper §5.1).
    let result = run_experiment(&small(Graph::G1));
    let r = result.series_for(Variant::RTree);
    let sr = result.series_for(Variant::SRTree);
    assert_eq!(sr.build.spanning_stores, 0, "no spanning records stored");
    for (a, b) in r.points.iter().zip(sr.points.iter()) {
        assert_eq!(a.avg_nodes, b.avg_nodes, "identical at qar {}", a.qar);
    }
}

#[test]
fn graph6_skeleton_sr_stores_large_spanning_rectangles() {
    let result = run_experiment(&small(Graph::G6));
    let ksr = result.series_for(Variant::SkeletonSRTree);
    assert!(
        ksr.build.spanning_stores > 0,
        "rectangle data with exponential sides must produce spanning records"
    );
    // And it beats the Skeleton R-Tree overall.
    let kr = result.series_for(Variant::SkeletonRTree);
    assert!(
        ksr.mean_where(|_| true) < kr.mean_where(|_| true),
        "Skeleton SR {} vs Skeleton R {}",
        ksr.mean_where(|_| true),
        kr.mean_where(|_| true)
    );
}

#[test]
fn experiments_are_deterministic() {
    let a = run_experiment(&small(Graph::G4));
    let b = run_experiment(&small(Graph::G4));
    for (sa, sb) in a.series.iter().zip(b.series.iter()) {
        assert_eq!(sa.variant, sb.variant);
        for (pa, pb) in sa.points.iter().zip(sb.points.iter()) {
            assert_eq!(pa.avg_nodes, pb.avg_nodes);
        }
        assert_eq!(sa.build.node_count, sb.build.node_count);
    }
}

#[test]
fn every_variant_answers_every_graph_consistently() {
    // Cheap sanity across all six paper graphs: the four paper variants
    // plus the HINT engine return the same result *counts* for the same
    // query load (full equality is covered by the differential tests).
    for graph in Graph::PAPER {
        let exp = Experiment {
            tuples: 2_000,
            queries_per_qar: 5,
            ..Experiment::paper(graph)
        };
        let result = run_experiment(&exp);
        assert_eq!(result.series.len(), 5);
        for s in &result.series {
            assert_eq!(s.points.len(), 13, "{} on {graph:?}", s.variant.name());
            assert!(s.points.iter().all(|p| p.avg_nodes >= 1.0));
        }
    }
}
