//! Concurrent read access: `Tree` is `Sync`, so any number of threads may
//! search one index simultaneously while another (immutable) index is
//! joined against it — and the batch engine fans one query list out across
//! worker threads with results identical to serial execution.

use segidx_core::{
    IndexConfig, IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree, Tree,
};
use segidx_geom::{Point, Rect};
use segidx_workloads::{queries_for_qar, DataDistribution, DOMAIN_MAX};
use std::sync::Arc;

// Compile-time proof that shared search access is allowed.
fn assert_sync<T: Sync>() {}

#[test]
fn tree_is_sync_and_send() {
    assert_sync::<Tree<2>>();
    fn assert_send<T: Send>() {}
    assert_send::<Tree<2>>();
}

#[test]
fn parallel_searches_agree_with_serial() {
    let dataset = DataDistribution::I3.generate(10_000, 13);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    let tree = Arc::new(tree);

    let queries: Vec<Rect<2>> = [0.001, 1.0, 1000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 30, 5).queries)
        .collect();
    let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| tree.search(q)).collect();

    std::thread::scope(|scope| {
        for t in 0..6 {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                // Each thread walks the query list from a different offset.
                for k in 0..queries.len() {
                    let i = (k + t * 17) % queries.len();
                    assert_eq!(tree.search(&queries[i]), serial[i], "query {i}");
                }
                // Mix in stabs and kNN.
                let p = Point::new([5_000.0 + t as f64, 5_000.0]);
                let knn = tree.nearest(&p, 5);
                assert_eq!(knn.len(), 5);
            });
        }
    });

    // Counters aggregated across threads without tearing: 6 threads × (90
    // searches + 1 kNN) plus the 90 serial searches.
    let snap = tree.stats();
    assert_eq!(snap.searches, 90 + 6 * 91);
}

#[test]
fn search_batch_equals_serial_search_for_all_variants() {
    // Property: `search_batch` ≡ per-query `search` — same ids, same order —
    // for every paper variant and worker count, and the stats counters
    // aggregate to the same totals without tearing.
    let n = 10_000;
    let dataset = DataDistribution::I3.generate(n, 13);
    let domain = Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX]);

    let mut rtree = RTree::<2>::new();
    let mut srtree = SRTree::<2>::new();
    let mut sk_r = SkeletonRTree::<2>::with_prediction(domain, n, n / 10);
    let mut sk_sr = SkeletonSRTree::<2>::with_prediction(domain, n, n / 10);
    for (r, id) in &dataset.records {
        rtree.insert(*r, *id);
        srtree.insert(*r, *id);
        sk_r.insert(*r, *id);
        sk_sr.insert(*r, *id);
    }
    sk_r.finalize();
    sk_sr.finalize();

    let queries: Vec<Rect<2>> = [0.001, 1.0, 1000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 25, 5).queries)
        .collect();

    let trees: Vec<(&str, &Tree<2>)> = vec![
        ("R-Tree", rtree.tree()),
        ("SR-Tree", srtree.tree()),
        ("Skeleton R-Tree", sk_r.tree().expect("finalized")),
        ("Skeleton SR-Tree", sk_sr.tree().expect("finalized")),
    ];
    for (name, tree) in trees {
        let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| tree.search(q)).collect();
        assert!(
            serial.iter().any(|ids| !ids.is_empty()),
            "{name}: degenerate workload"
        );
        tree.reset_search_stats();
        let mut batch_runs = 0u64;
        for workers in [1usize, 2, 6] {
            assert_eq!(
                tree.search_batch_threads(&queries, workers),
                serial,
                "{name}: workers={workers}"
            );
            batch_runs += 1;
        }
        let snap = tree.stats();
        assert_eq!(
            snap.searches,
            batch_runs * queries.len() as u64,
            "{name}: searches counter aggregates without tearing"
        );
        assert_eq!(
            snap.search_node_accesses % batch_runs,
            0,
            "{name}: identical batches flush identical access totals"
        );
        assert_eq!(
            snap.search_results % batch_runs,
            0,
            "{name}: identical batches flush identical result totals"
        );
    }

    // The object-safe trait surface batches too (default worker count).
    let boxed: Vec<Box<dyn IntervalIndex<2>>> = vec![
        Box::new(rtree),
        Box::new(srtree),
        Box::new(sk_r),
        Box::new(sk_sr),
    ];
    for v in &boxed {
        let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| v.search(q)).collect();
        assert_eq!(
            v.search_batch(&queries),
            serial,
            "{}: trait-level batch",
            v.variant_name()
        );
    }
}

#[test]
fn tree_level_batch_threads_and_stab_batch_match_serial() {
    let dataset = DataDistribution::I3.generate(10_000, 29);
    for config in [IndexConfig::rtree(), IndexConfig::srtree()] {
        let mut tree: Tree<2> = Tree::new(config);
        for (r, id) in &dataset.records {
            tree.insert(*r, *id);
        }
        let queries: Vec<Rect<2>> = [0.01, 100.0]
            .iter()
            .flat_map(|&q| queries_for_qar(q, 40, 11).queries)
            .collect();
        let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| tree.search(q)).collect();
        tree.reset_search_stats();
        for workers in [1usize, 2, 6] {
            assert_eq!(tree.search_batch_threads(&queries, workers), serial);
        }
        let snap = tree.stats();
        assert_eq!(snap.searches, 3 * queries.len() as u64);

        let points: Vec<Point<2>> = (0..60)
            .map(|i| Point::new([((i * 1_999) % 100_000) as f64, ((i * 733) % 100_000) as f64]))
            .collect();
        let stab_serial: Vec<Vec<RecordId>> = points.iter().map(|p| tree.stab(p)).collect();
        for workers in [1usize, 2, 6] {
            assert_eq!(tree.stab_batch_threads(&points, workers), stab_serial);
        }
        assert_eq!(tree.search_batch(&queries), serial);
        assert_eq!(tree.stab_batch(&points), stab_serial);
    }
}

#[test]
fn join_runs_against_shared_trees() {
    let a = DataDistribution::R1.generate(2_000, 1);
    let b = DataDistribution::R1.generate(2_000, 2);
    let build = |ds: &segidx_workloads::Dataset| {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for (r, id) in &ds.records {
            t.insert(*r, *id);
        }
        Arc::new(t)
    };
    let ta = build(&a);
    let tb = build(&b);
    let expected = ta.join(&tb);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let ta = Arc::clone(&ta);
            let tb = Arc::clone(&tb);
            let expected = &expected;
            scope.spawn(move || {
                assert_eq!(&ta.join(&tb), expected);
            });
        }
    });
}
