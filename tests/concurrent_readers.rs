//! Concurrent read access: `Tree` is `Sync`, so any number of threads may
//! search one index simultaneously while another (immutable) index is
//! joined against it.

use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::{Point, Rect};
use segidx_workloads::{queries_for_qar, DataDistribution};
use std::sync::Arc;

// Compile-time proof that shared search access is allowed.
fn assert_sync<T: Sync>() {}

#[test]
fn tree_is_sync_and_send() {
    assert_sync::<Tree<2>>();
    fn assert_send<T: Send>() {}
    assert_send::<Tree<2>>();
}

#[test]
fn parallel_searches_agree_with_serial() {
    let dataset = DataDistribution::I3.generate(10_000, 13);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    let tree = Arc::new(tree);

    let queries: Vec<Rect<2>> = [0.001, 1.0, 1000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 30, 5).queries)
        .collect();
    let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| tree.search(q)).collect();

    crossbeam::thread::scope(|scope| {
        for t in 0..6 {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move |_| {
                // Each thread walks the query list from a different offset.
                for k in 0..queries.len() {
                    let i = (k + t * 17) % queries.len();
                    assert_eq!(tree.search(&queries[i]), serial[i], "query {i}");
                }
                // Mix in stabs and kNN.
                let p = Point::new([5_000.0 + t as f64, 5_000.0]);
                let knn = tree.nearest(&p, 5);
                assert_eq!(knn.len(), 5);
            });
        }
    })
    .unwrap();

    // Counters aggregated across threads without tearing: 6 threads × (90
    // searches + 1 kNN) plus the 90 serial searches.
    let snap = tree.stats();
    assert_eq!(snap.searches, 90 + 6 * 91);
}

#[test]
fn join_runs_against_shared_trees() {
    let a = DataDistribution::R1.generate(2_000, 1);
    let b = DataDistribution::R1.generate(2_000, 2);
    let build = |ds: &segidx_workloads::Dataset| {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for (r, id) in &ds.records {
            t.insert(*r, *id);
        }
        Arc::new(t)
    };
    let ta = build(&a);
    let tb = build(&b);
    let expected = ta.join(&tb);

    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let ta = Arc::clone(&ta);
            let tb = Arc::clone(&tb);
            let expected = &expected;
            scope.spawn(move |_| {
                assert_eq!(&ta.join(&tb), expected);
            });
        }
    })
    .unwrap();
}
