//! Integration across the workspace: workload generation (segidx-workloads)
//! → index construction (segidx-core) → persistence onto variable-size
//! pages (segidx-storage) → reload → identical query answers.

use segidx_core::{persist, IndexConfig, RecordId, Tree};
use segidx_geom::Rect;
use segidx_storage::{BufferPool, BufferPoolConfig, DiskManager, SizeClass};
use segidx_workloads::{paper_query_sweep, DataDistribution};
use std::path::PathBuf;
use std::sync::Arc;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("segidx-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_pipeline_roundtrip() {
    let dataset = DataDistribution::I3.generate(5_000, 9);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    tree.assert_invariants();

    let path = temp("pipeline.db");
    let disk = DiskManager::create(&path).unwrap();
    let meta = persist::save(&tree, &disk).unwrap();
    disk.sync().unwrap();
    drop(disk);

    let disk = DiskManager::open(&path).unwrap();
    let loaded: Tree<2> = persist::load(&disk, meta).unwrap();
    loaded.assert_invariants();
    assert_eq!(loaded.len(), tree.len());

    // Every query of the paper's sweep answers identically.
    for qs in paper_query_sweep(3) {
        for q in qs.queries.iter().take(5) {
            assert_eq!(loaded.search(q), tree.search(q));
        }
    }
}

#[test]
fn persisted_pages_follow_the_node_size_ladder() {
    let dataset = DataDistribution::I1.generate(8_000, 2);
    let mut tree: Tree<2> = Tree::new(IndexConfig::rtree());
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    let disk = DiskManager::create(temp("ladder.db")).unwrap();
    let _ = persist::save(&tree, &disk).unwrap();

    // Leaf pages are the base size; counts per class mirror the level
    // profile. Completely full leaves encode slightly beyond the 1 KB
    // payload (page header overhead) and are promoted one class, so allow
    // a small fraction of promotions.
    let profile = tree.level_profile();
    let pages = disk.pages();
    let leaves = pages
        .iter()
        .filter(|(_, c)| *c == SizeClass::new(0))
        .count();
    assert!(
        leaves >= profile[0] * 9 / 10,
        "expected ≈{} 1 KB pages, found {leaves}",
        profile[0]
    );
    assert!(
        pages.iter().any(|(_, c)| c.raw() >= 1),
        "larger upper pages"
    );
}

#[test]
fn buffer_pool_serves_a_working_set_smaller_than_the_index() {
    // Persist an index, then read every page back through a pool whose
    // budget holds only a fraction of it — exercising eviction + reread.
    let dataset = DataDistribution::R1.generate(6_000, 4);
    let mut tree: Tree<2> = Tree::new(IndexConfig::rtree());
    for (r, id) in &dataset.records {
        tree.insert(*r, *id);
    }
    let disk = Arc::new(DiskManager::create(temp("pool.db")).unwrap());
    let _ = persist::save(&tree, &disk).unwrap();
    let pages = disk.pages();
    let total_bytes: usize = pages.iter().map(|(_, c)| c.page_size()).sum();

    let pool = BufferPool::with_config(
        Arc::clone(&disk),
        BufferPoolConfig {
            capacity_bytes: total_bytes / 8,
        },
    );
    // Two passes: the second still faults (working set exceeds budget).
    for _ in 0..2 {
        for (id, _) in &pages {
            let ok = pool.with_page(*id, |p| !p.payload().is_empty()).unwrap();
            assert!(ok);
        }
    }
    let stats = pool.stats().snapshot();
    assert!(stats.evictions > 0, "pool must evict under pressure");
    assert!(
        pool.cached_bytes() <= total_bytes / 8,
        "pool respects its byte budget"
    );
}

#[test]
fn all_variants_roundtrip_through_disk() {
    for (name, config) in [
        ("rtree", IndexConfig::rtree()),
        ("srtree", IndexConfig::srtree()),
    ] {
        let dataset = DataDistribution::I4.generate(3_000, 8);
        let mut tree: Tree<2> = Tree::new(config);
        for (r, id) in &dataset.records {
            tree.insert(*r, *id);
        }
        // Also delete some records before persisting.
        for (r, id) in dataset.records.iter().step_by(5) {
            assert!(tree.delete(r, *id));
        }
        tree.assert_invariants();

        let disk = DiskManager::create(temp(&format!("variant-{name}.db"))).unwrap();
        let meta = persist::save(&tree, &disk).unwrap();
        let loaded: Tree<2> = persist::load(&disk, meta).unwrap();
        loaded.assert_invariants();
        let q = Rect::new([0.0, 0.0], [100_000.0, 100_000.0]);
        assert_eq!(loaded.search(&q), tree.search(&q), "{name}");
        assert_eq!(loaded.entry_count(), tree.entry_count(), "{name}");
    }
    let _ = RecordId(0);
}
