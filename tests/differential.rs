//! Differential testing: every index variant (and the bulk loader) must
//! return exactly the same answers as a brute-force scan, across workloads,
//! query shapes, and interleaved deletions.

use segidx_bench::Variant;
use segidx_core::bulk::bulk_load;
use segidx_core::{IndexConfig, RecordId};
use segidx_geom::{Point, Rect};
use segidx_workloads::{queries_for_qar, DataDistribution};

const N: usize = 4_000;

fn brute_force(records: &[(Rect<2>, RecordId)], query: &Rect<2>) -> Vec<RecordId> {
    let mut out: Vec<RecordId> = records
        .iter()
        .filter(|(r, _)| r.intersects(query))
        .map(|(_, id)| *id)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn query_mix(seed: u64) -> Vec<Rect<2>> {
    let mut queries: Vec<Rect<2>> = [0.0001, 0.01, 1.0, 100.0, 10_000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 6, seed).queries)
        .collect();
    // Stabbing points and a full-domain scan.
    for i in 0..10u64 {
        let x = (i * 9_973 % 100_000) as f64;
        let y = (i * 31_337 % 100_000) as f64;
        queries.push(Rect::from_point(Point::new([x, y])));
    }
    queries.push(Rect::new([0.0, 0.0], [100_000.0, 100_000.0]));
    queries
}

#[test]
fn variants_match_brute_force_on_all_distributions() {
    for dist in DataDistribution::ALL {
        let dataset = dist.generate(N, 21);
        let queries = query_mix(4);
        for variant in Variant::ALL {
            let mut index = variant.build_index(N);
            for (r, id) in &dataset.records {
                index.insert(*r, *id);
            }
            assert!(
                index.check_invariants().is_empty(),
                "{} on {}: {:?}",
                variant.name(),
                dist.name(),
                index.check_invariants()
            );
            for query in &queries {
                let expected = brute_force(&dataset.records, query);
                let got = index.search(query);
                assert_eq!(
                    got,
                    expected,
                    "{} on {} disagrees for {query:?}",
                    variant.name(),
                    dist.name()
                );
            }
        }
    }
}

#[test]
fn bulk_loaded_tree_matches_brute_force() {
    let dataset = DataDistribution::R2.generate(N, 33);
    let tree = bulk_load(IndexConfig::rtree(), dataset.records.clone());
    tree.assert_invariants();
    for query in &query_mix(5) {
        assert_eq!(tree.search(query), brute_force(&dataset.records, query));
    }
}

#[test]
fn deletions_keep_variants_consistent() {
    let dataset = DataDistribution::I3.generate(N, 55);
    for variant in Variant::ALL {
        let mut index = variant.build_index(N);
        for (r, id) in &dataset.records {
            index.insert(*r, *id);
        }
        // Delete every third record.
        let mut remaining: Vec<(Rect<2>, RecordId)> = Vec::new();
        for (i, (r, id)) in dataset.records.iter().enumerate() {
            if i % 3 == 0 {
                assert!(index.delete(r, *id), "{}: delete {id:?}", variant.name());
            } else {
                remaining.push((*r, *id));
            }
        }
        assert_eq!(index.len(), remaining.len(), "{}", variant.name());
        assert!(
            index.check_invariants().is_empty(),
            "{} after deletes: {:?}",
            variant.name(),
            index.check_invariants()
        );
        for query in &query_mix(6) {
            assert_eq!(
                index.search(query),
                brute_force(&remaining, query),
                "{} disagrees after deletes for {query:?}",
                variant.name()
            );
        }
    }
}

#[test]
fn interleaved_insert_delete_search() {
    let dataset = DataDistribution::I4.generate(2_000, 77);
    let mut index = Variant::SkeletonSRTree.build_index(2_000);
    let mut live: Vec<(Rect<2>, RecordId)> = Vec::new();
    for (i, (r, id)) in dataset.records.iter().enumerate() {
        index.insert(*r, *id);
        live.push((*r, *id));
        // Periodically delete an old record and verify a probe.
        if i % 7 == 3 {
            let victim = live.remove(live.len() / 2);
            assert!(index.delete(&victim.0, victim.1));
        }
        if i % 251 == 0 {
            let q = Rect::new([0.0, 0.0], [50_000.0, 50_000.0]);
            assert_eq!(index.search(&q), brute_force(&live, &q), "at step {i}");
        }
    }
    assert_eq!(index.len(), live.len());
    assert!(index.check_invariants().is_empty());
}
