//! Differential crash-sweep smoke: power-cut a deterministic trace at every
//! write boundary, reopen in repair mode, and require the recovered index
//! to answer exactly like a model rebuilt from the durable prefix.
//!
//! CI additionally runs the `crash_sweep` binary over 64 seeds in release
//! mode; this test keeps a smaller always-on version inside `cargo test`.

use segidx_bench::crash::{corruption_trials, crash_sweep, TraceConfig};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("segidx-crash-it-{}-{name}", std::process::id()))
}

#[test]
fn power_cut_at_every_write_boundary_recovers_the_committed_prefix() {
    let dir = scratch("sweep");
    let cfg = TraceConfig {
        ops: 36,
        checkpoint_every: 9,
        delete_fraction: 0.25,
    };
    for seed in [0, 1, 42] {
        let outcome = crash_sweep(seed, &dir, &cfg);
        assert!(outcome.writes > 0, "seed {seed} produced no writes");
        assert!(
            outcome.failures.is_empty(),
            "seed {seed} failed:\n{:#?}",
            outcome.failures
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_rot_is_reported_never_answered_wrongly() {
    let dir = scratch("rot");
    for seed in [5, 17] {
        let failures = corruption_trials(seed, &dir, 8);
        assert!(failures.is_empty(), "seed {seed} failed:\n{failures:#?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
