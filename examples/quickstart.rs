//! Quickstart: build each index variant, insert interval data, and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use segment_indexes::core::{
    IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segment_indexes::geom::Rect;

fn main() {
    // The domain: time on the X axis (years), measurement on the Y axis.
    let domain = Rect::new([1900.0, 0.0], [2100.0, 1000.0]);

    // The four index variants of the paper share one trait.
    let mut indexes: Vec<Box<dyn IntervalIndex<2>>> = vec![
        Box::new(RTree::<2>::new()),
        Box::new(SRTree::<2>::new()),
        // Skeleton variants pre-construct the index; here we buffer the
        // first 50 tuples for distribution prediction (paper §4).
        Box::new(SkeletonRTree::<2>::with_prediction(domain, 1_000, 50)),
        Box::new(SkeletonSRTree::<2>::with_prediction(domain, 1_000, 50)),
    ];

    // Historical interval data: horizontal segments — a value that held
    // during a time range (paper Figure 1).
    let records: Vec<(Rect<2>, RecordId)> = (0..1_000u64)
        .map(|i| {
            let start = 1900.0 + (i % 180) as f64;
            let duration = 1.0 + (i % 23) as f64; // mix of short and long
            let value = (i % 997) as f64;
            (
                Rect::new([start, value], [start + duration, value]),
                RecordId(i),
            )
        })
        .collect();

    for index in indexes.iter_mut() {
        for (rect, id) in &records {
            index.insert(*rect, *id);
        }
    }

    // Range query: everything valid during 1950–1980 with value in
    // [100, 500].
    let query = Rect::new([1950.0, 100.0], [1980.0, 500.0]);
    println!("query {query:?}\n");
    for index in &indexes {
        let hits = index.search(&query);
        let accesses = index.count_search_accesses(&query);
        println!(
            "{:>18}: {} results, {} index nodes accessed, {} nodes total, height {}",
            index.variant_name(),
            hits.len(),
            accesses,
            index.node_count(),
            index.height()
        );
        assert!(index.check_invariants().is_empty());
    }

    // All variants agree on the answer.
    let expected = indexes[0].search(&query);
    for index in &indexes[1..] {
        assert_eq!(index.search(&query), expected);
    }
    println!("\nall four variants returned identical results");
}
