//! Persisting an index to the paged storage substrate and reading it back.
//!
//! Each index node is written to a page whose size follows the paper's
//! ladder — 1 KB leaves, doubling per level (§2.1.2) — and the buffer pool
//! reports physical I/O alongside the index's logical node accesses.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use segment_indexes::core::{persist, IndexConfig, RecordId, Tree};
use segment_indexes::geom::Rect;
use segment_indexes::storage::DiskManager;
use segment_indexes::workloads::DataDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("segidx-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("salaries.db");

    // Build an SR-Tree over 20K skewed intervals.
    let dataset = DataDistribution::I3.generate(20_000, 11);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (rect, id) in &dataset.records {
        tree.insert(*rect, *id);
    }
    println!(
        "built SR-Tree: {} records, {} nodes, height {}",
        tree.len(),
        tree.node_count(),
        tree.height()
    );

    // Persist: one page per node, sized by level.
    let disk = DiskManager::create(&path)?;
    let meta = persist::save(&tree, &disk)?;
    disk.sync()?;
    let stats = disk.stats().snapshot();
    println!(
        "saved to {}: {} pages, {} bytes written",
        path.display(),
        disk.page_count(),
        stats.bytes_written
    );
    let mut by_class: Vec<(u8, usize)> = Vec::new();
    for (_, class) in disk.pages() {
        match by_class.iter_mut().find(|(c, _)| *c == class.raw()) {
            Some((_, n)) => *n += 1,
            None => by_class.push((class.raw(), 1)),
        }
    }
    by_class.sort();
    for (class, count) in by_class {
        println!("  {count:>6} pages of {} KB", 1 << class);
    }
    drop(disk);

    // Reopen and verify.
    let disk = DiskManager::open(&path)?;
    let loaded: Tree<2> = persist::load(&disk, meta)?;
    println!(
        "\nreloaded: {} records, {} nodes, height {}",
        loaded.len(),
        loaded.node_count(),
        loaded.height()
    );
    let query = Rect::new([10_000.0, 10_000.0], [30_000.0, 60_000.0]);
    let a = tree.search(&query);
    let b = loaded.search(&query);
    assert_eq!(a, b, "reloaded index answers identically");
    println!(
        "query returned {} identical results before and after the round trip",
        b.len()
    );
    let _ = RecordId(0);

    let io = disk.stats().snapshot();
    println!(
        "physical reads: {} pages / {} bytes (hit rate n/a — direct reads)",
        io.reads, io.bytes_read
    );
    Ok(())
}
