//! Valid-time monitoring with the temporal table layer.
//!
//! A fleet of servers reports configuration changes (CPU quota). Most
//! servers are re-tuned frequently; a long tail never changes — the paper's
//! skewed interval-length regime in an operational setting. The temporal
//! table answers "what was the fleet running as of T?" and "which quota
//! settings overlapped the incident window?"
//!
//! ```sh
//! cargo run --release --example fleet_monitoring
//! ```

use segment_indexes::geom::Interval;
use segment_indexes::temporal::{TemporalConfig, TemporalTable};

fn main() {
    let mut fleet = TemporalTable::new(TemporalConfig {
        time_horizon: 100_000.0, // minutes since epoch for this sim
        ..TemporalConfig::default()
    });

    // 2,000 servers; server id = key, CPU quota (%) = the tracked value.
    // Deterministic churn: "hot" servers are re-tuned every few minutes,
    // "cold" ones keep their initial quota forever.
    let mut changes = 0u64;
    for server in 0..2_000u64 {
        let mut t = (server % 500) as f64;
        let hot = server % 5 != 0; // 80% hot, 20% never touched again
        let mut quota = 10.0 + (server % 80) as f64;
        fleet.insert(server, quota, t);
        changes += 1;
        if hot {
            while t < 90_000.0 {
                t += 30.0 + (server % 97) as f64 * 7.0;
                quota = 10.0 + ((quota as u64 * 31 + server) % 90) as f64;
                fleet.insert(server, quota, t);
                changes += 1;
            }
        }
    }
    println!(
        "{changes} configuration changes across {} servers ({} versions indexed)",
        fleet.key_count(),
        fleet.version_count()
    );

    // As-of query: full fleet state at minute 45,000.
    let snapshot = fleet.as_of(45_000.0);
    println!(
        "\nas of minute 45000: {} servers had an active quota",
        snapshot.len()
    );
    let mean: f64 = snapshot.iter().map(|(_, v)| v.value).sum::<f64>() / snapshot.len() as f64;
    println!("mean quota at that instant: {mean:.1}%");

    // Incident forensics: which settings of 60%+ quota overlapped the
    // incident window [50_000, 50_180]?
    let suspicious = fleet.range(
        Interval::new(50_000.0, 50_180.0),
        Interval::new(60.0, 100.0),
    );
    println!(
        "\nincident window [50000, 50180]: {} high-quota (≥60%) versions overlapped",
        suspicious.len()
    );
    let long_lived = suspicious
        .iter()
        .filter(|(_, v)| v.to.unwrap_or(100_000.0) - v.from > 10_000.0)
        .count();
    println!("of which {long_lived} had been in effect for over 10,000 minutes");

    // One server's full audit trail.
    let trail = fleet.history_of(42);
    println!("\nserver 42 audit trail ({} versions):", trail.len());
    for (_, v) in trail.iter().take(5) {
        println!(
            "  {:>8.0} → {:>8}  quota {:>3.0}%",
            v.from,
            v.to.map_or("open".into(), |t| format!("{t:.0}")),
            v.value
        );
    }
    if trail.len() > 5 {
        println!("  … {} more", trail.len() - 5);
    }

    // The skew shows up in the index: long-lived versions are spanning
    // records on non-leaf nodes.
    let stats = fleet.index_stats();
    println!(
        "\nindex: {} nodes, {} spanning records stored, {} node accesses/search (avg over run)",
        fleet.index().node_count(),
        stats.spanning_stores,
        stats
            .avg_nodes_per_search()
            .map_or("n/a".into(), |v| format!("{v:.1}")),
    );
    assert!(fleet.index().check_invariants().is_empty());
}
