//! Skeleton adaptation (paper §4): distribution prediction, splitting, and
//! coalescing on skewed data.
//!
//! Builds three Skeleton SR-Trees over the same heavily skewed dataset:
//! one pre-partitioned assuming a uniform distribution, one given the true
//! histogram, and one using distribution prediction (buffering the first 5%
//! of tuples) — then compares structure and search cost.
//!
//! ```sh
//! cargo run --release --example adaptive_skeleton
//! ```

use segment_indexes::core::{Histogram, IntervalIndex, SkeletonSRTree, SkeletonSpec};
use segment_indexes::geom::Rect;
use segment_indexes::workloads::{queries_for_qar, DataDistribution};

fn main() {
    const N: usize = 50_000;
    let domain = Rect::new([0.0, 0.0], [100_000.0, 100_000.0]);

    // I4: exponential interval lengths *and* exponential Y values — the
    // most skewed of the paper's distributions.
    let dataset = DataDistribution::I4.generate(N, 42);

    // The true marginal distribution of Y (β = 7000): dense near zero.
    let true_y: Vec<f64> = dataset.records.iter().map(|(r, _)| r.center()[1]).collect();
    let true_x: Vec<f64> = dataset.records.iter().map(|(r, _)| r.center()[0]).collect();

    let mut variants: Vec<(&str, SkeletonSRTree<2>)> = vec![
        (
            "uniform assumption",
            SkeletonSRTree::from_spec(&SkeletonSpec::uniform(domain, N)),
        ),
        (
            "true histogram",
            SkeletonSRTree::from_spec(&SkeletonSpec {
                domain,
                expected_tuples: N,
                histograms: vec![
                    Histogram::equi_depth(true_x, domain.interval(0), 64),
                    Histogram::equi_depth(true_y, domain.interval(1), 64),
                ],
            }),
        ),
        (
            "distribution prediction (5%)",
            SkeletonSRTree::with_prediction(domain, N, N / 20),
        ),
    ];

    for (_, index) in variants.iter_mut() {
        for (rect, id) in &dataset.records {
            index.insert(*rect, *id);
        }
    }

    // A small QAR sweep, averaged.
    let queries: Vec<Rect<2>> = [0.001, 0.1, 1.0, 10.0, 1000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 40, 9).queries)
        .collect();

    println!("{N} tuples of I4 (exponential lengths, exponential Y)\n");
    println!(
        "{:<30} {:>7} {:>7} {:>10} {:>10} {:>12}",
        "skeleton construction", "nodes", "height", "coalesces", "spanning", "avg accesses"
    );
    for (name, index) in &variants {
        index.reset_search_stats();
        let mut total = 0u64;
        for q in &queries {
            total += index.count_search_accesses(q);
        }
        let snap = index.stats();
        println!(
            "{:<30} {:>7} {:>7} {:>10} {:>10} {:>12.1}",
            name,
            index.node_count(),
            index.height(),
            snap.coalesces,
            snap.spanning_stores,
            total as f64 / queries.len() as f64
        );
        assert!(index.check_invariants().is_empty());
    }

    println!(
        "\nThe uniform skeleton wastes nodes in the empty upper region and must\n\
         coalesce them away; prediction from the first 5% tracks the true\n\
         histogram closely, as the paper reports (§4: values of T in the\n\
         range of 5% to 10% of the expected number of tuples worked well)."
    );
}
