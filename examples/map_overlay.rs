//! Spatial join: overlaying two map layers.
//!
//! Joins a layer of flood-risk zones (few, large rectangles) against a
//! layer of buildings (many, small rectangles) to find every building in a
//! risk zone — one synchronized traversal instead of one query per zone.
//!
//! ```sh
//! cargo run --release --example map_overlay
//! ```

use segment_indexes::core::{IndexConfig, RecordId, Tree};
use segment_indexes::geom::Rect;

fn main() {
    // Buildings: 30K small footprints on a grid-ish city plan.
    let mut buildings: Tree<2> = Tree::new(IndexConfig::rtree());
    let mut building_count = 0u64;
    for block_x in 0..150u64 {
        for block_y in 0..50u64 {
            for lot in 0..4u64 {
                let x = block_x as f64 * 600.0 + lot as f64 * 140.0;
                let y = block_y as f64 * 900.0 + (lot % 2) as f64 * 300.0;
                buildings.insert(
                    Rect::new([x, y], [x + 90.0, y + 120.0]),
                    RecordId(building_count),
                );
                building_count += 1;
            }
        }
    }

    // Flood zones: a handful of large, irregular spans along "rivers".
    let zones = [
        Rect::new([0.0, 4_000.0], [90_000.0, 6_500.0]), // east-west river
        Rect::new([30_000.0, 0.0], [33_000.0, 45_000.0]), // north-south river
        Rect::new([60_000.0, 20_000.0], [75_000.0, 28_000.0]), // lake
    ];
    let mut zone_index: Tree<2> = Tree::new(IndexConfig::srtree());
    for (i, z) in zones.iter().enumerate() {
        zone_index.insert(*z, RecordId(i as u64));
    }

    // One synchronized traversal computes the full overlay.
    let pairs = zone_index.join(&buildings);
    println!(
        "{building_count} buildings × {} flood zones → {} (zone, building) pairs",
        zones.len(),
        pairs.len()
    );
    for (i, _) in zones.iter().enumerate() {
        let n = pairs.iter().filter(|(z, _)| z.raw() == i as u64).count();
        println!("  zone {i}: {n} buildings at risk");
    }

    // Sanity: the join agrees with per-zone searches.
    let mut by_query = 0usize;
    for (i, z) in zones.iter().enumerate() {
        let hits = buildings.search(z);
        by_query += hits.len();
        let joined = pairs
            .iter()
            .filter(|(zid, _)| zid.raw() == i as u64)
            .count();
        assert_eq!(hits.len(), joined);
    }
    assert_eq!(by_query, pairs.len());
    println!("\njoin verified against {by_query} per-zone query results");
}
