//! Spatial (GIS-style) rectangle indexing with skewed feature sizes.
//!
//! A map layer mixes many small features (buildings) with a few enormous
//! ones (lakes, administrative boundaries) — rectangle data with a highly
//! non-uniform size distribution, the R2 regime of the paper's Graph 6.
//! This example compares map-window queries across all four variants.
//!
//! ```sh
//! cargo run --release --example spatial_gis
//! ```

use segment_indexes::core::{
    IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segment_indexes::geom::Rect;

/// Deterministic pseudo-random stream (keeps the example dependency-free).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn main() {
    const N: u64 = 40_000;
    let domain = Rect::new([0.0, 0.0], [100_000.0, 100_000.0]);
    let mut rng = Lcg(0xFEED_5EED);

    // Feature mix: 97% buildings (≤120 m), 2.5% parks (≤2 km), 0.5% lakes
    // and boundaries (up to 40 km).
    let features: Vec<(Rect<2>, RecordId)> = (0..N)
        .map(|i| {
            let cx = rng.next_f64() * 100_000.0;
            let cy = rng.next_f64() * 100_000.0;
            let class = rng.next_f64();
            let (w, h) = if class < 0.97 {
                (20.0 + rng.next_f64() * 100.0, 20.0 + rng.next_f64() * 100.0)
            } else if class < 0.995 {
                (
                    500.0 + rng.next_f64() * 1_500.0,
                    500.0 + rng.next_f64() * 1_500.0,
                )
            } else {
                (
                    5_000.0 + rng.next_f64() * 35_000.0,
                    2_000.0 + rng.next_f64() * 10_000.0,
                )
            };
            let rect = Rect::new(
                [(cx - w / 2.0).max(0.0), (cy - h / 2.0).max(0.0)],
                [(cx + w / 2.0).min(100_000.0), (cy + h / 2.0).min(100_000.0)],
            );
            (rect, RecordId(i))
        })
        .collect();

    let mut indexes: Vec<Box<dyn IntervalIndex<2>>> = vec![
        Box::new(RTree::<2>::new()),
        Box::new(SRTree::<2>::new()),
        Box::new(SkeletonRTree::<2>::with_prediction(
            domain, N as usize, 2_000,
        )),
        Box::new(SkeletonSRTree::<2>::with_prediction(
            domain, N as usize, 2_000,
        )),
    ];
    for index in indexes.iter_mut() {
        for (rect, id) in &features {
            index.insert(*rect, *id);
        }
    }

    // Map windows at three zoom levels.
    let windows = [
        (
            "street zoom (200 m)",
            Rect::new([42_000.0, 57_000.0], [42_200.0, 57_200.0]),
        ),
        (
            "district zoom (3 km)",
            Rect::new([40_000.0, 55_000.0], [43_000.0, 58_000.0]),
        ),
        (
            "city zoom (20 km)",
            Rect::new([30_000.0, 45_000.0], [50_000.0, 65_000.0]),
        ),
    ];

    println!("{N} features (97% buildings, 2.5% parks, 0.5% lakes)\n");
    for (label, window) in &windows {
        println!("{label}:");
        let expected = indexes[0].search(window);
        for index in &indexes {
            let accesses = index.count_search_accesses(window);
            let hits = index.search(window);
            assert_eq!(hits, expected, "{} disagrees", index.variant_name());
            println!(
                "  {:>18}: {:>5} features, {:>4} node accesses ({} nodes total)",
                index.variant_name(),
                hits.len(),
                accesses,
                index.node_count()
            );
        }
        println!();
    }

    for index in &indexes {
        assert!(index.check_invariants().is_empty());
    }
    println!("all variants agreed on every window");
}
