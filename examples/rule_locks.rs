//! Rule locks over a one-dimensional index (paper §2.2).
//!
//! The paper's third motivation: a single index holding both *interval*
//! predicates (Rule 1: salary in (10K, 20K]) and *point* predicates
//! (Rule 2: salary = 100K), as POSTGRES-style rule locks. A 1-D SR-Tree is
//! "a special case of the K-dimensional Segment R-Tree".
//!
//! ```sh
//! cargo run --release --example rule_locks
//! ```

use segment_indexes::core::{IntervalIndex, RecordId, SRTree};
use segment_indexes::geom::{Interval, Rect};

/// A rule predicate over the salary domain.
struct Rule {
    name: &'static str,
    action: &'static str,
    predicate: Interval,
}

fn main() {
    let rules = [
        Rule {
            name: "rule-1",
            action: "office has at least 1 window",
            // 10K < salary ≤ 20K
            predicate: Interval::new(10_000.0, 20_000.0),
        },
        Rule {
            name: "rule-2",
            action: "office has at least 4 windows",
            // salary = 100K: an *event* (point) predicate.
            predicate: Interval::point(100_000.0),
        },
        Rule {
            name: "rule-3",
            action: "eligible for bonus plan B",
            predicate: Interval::new(45_000.0, 80_000.0),
        },
        Rule {
            name: "rule-4",
            action: "audit flag",
            predicate: Interval::new(0.0, 250_000.0), // a very long interval
        },
    ];

    // A one-dimensional SR-Tree: rule predicates are the indexed intervals.
    // Long predicates (rule-4) become spanning records high in the index;
    // point predicates live in leaves — both in the same structure, which
    // is exactly the mixed interval/event requirement of §2.2.
    let mut index = SRTree::<1>::new();
    for (i, rule) in rules.iter().enumerate() {
        index.insert(Rect::from_intervals([rule.predicate]), RecordId(i as u64));
    }

    // Incoming tuples: which rules fire for each salary?
    for salary in [5_000.0, 15_000.0, 60_000.0, 100_000.0] {
        let fired = index.search(&Rect::from_intervals([Interval::point(salary)]));
        println!("salary ${salary:>9.0}:");
        if fired.is_empty() {
            println!("  no rules fire");
        }
        for id in fired {
            let rule = &rules[id.raw() as usize];
            println!("  {} fires → {}", rule.name, rule.action);
        }
    }

    // Scale check: 100,000 rules with mixed interval/point predicates.
    let mut big = SRTree::<1>::new();
    for i in 0..100_000u64 {
        let lo = (i % 97_000) as f64;
        let len = match i % 13 {
            0 => 0.0,      // point predicate
            1 => 50_000.0, // very wide predicate
            _ => 10.0 + (i % 500) as f64,
        };
        big.insert(
            Rect::from_intervals([Interval::new(lo, lo + len)]),
            RecordId(i),
        );
    }
    let probe = Rect::from_intervals([Interval::point(42_000.0)]);
    let fired = big.search(&probe);
    let accesses = big.count_search_accesses(&probe);
    println!(
        "\n100K mixed predicates: probe at 42K fires {} rules, touching {} of {} nodes (height {})",
        fired.len(),
        accesses,
        big.node_count(),
        big.height()
    );
    let snap = big.stats();
    println!(
        "spanning records stored: {}, promotions: {}, demotions: {}",
        snap.spanning_stores, snap.promotions, snap.demotions
    );
    assert!(big.check_invariants().is_empty());
}
