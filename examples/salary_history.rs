//! The paper's motivating scenario (Figure 1): employee salary histories.
//!
//! Salary periods are horizontal segments in (time, salary) space: most
//! employees get frequent raises (short segments), a few go years without
//! (very long segments) — exactly the skewed interval-length distribution
//! Segment Indexes target.
//!
//! ```sh
//! cargo run --release --example salary_history
//! ```

use segment_indexes::core::{IntervalIndex, RecordId, SRTree, SkeletonSRTree};
use segment_indexes::geom::{Point, Rect};

/// One salary period of one employee.
#[derive(Debug, Clone)]
struct SalaryPeriod {
    employee: &'static str,
    salary: f64,
    from: f64,
    to: f64,
}

impl SalaryPeriod {
    fn rect(&self) -> Rect<2> {
        Rect::new([self.from, self.salary], [self.to, self.salary])
    }
}

fn main() {
    let history = vec![
        SalaryPeriod {
            employee: "mike",
            salary: 28_000.0,
            from: 1975.0,
            to: 1977.0,
        },
        SalaryPeriod {
            employee: "mike",
            salary: 34_000.0,
            from: 1977.0,
            to: 1979.5,
        },
        SalaryPeriod {
            employee: "mike",
            salary: 41_000.0,
            from: 1979.5,
            to: 1984.0,
        },
        SalaryPeriod {
            employee: "mike",
            salary: 55_000.0,
            from: 1984.0,
            to: 1991.0,
        },
        // Curtis rarely got raises: one very long interval.
        SalaryPeriod {
            employee: "curtis",
            salary: 30_000.0,
            from: 1974.0,
            to: 1989.0,
        },
        SalaryPeriod {
            employee: "curtis",
            salary: 52_000.0,
            from: 1989.0,
            to: 1991.0,
        },
        SalaryPeriod {
            employee: "gene",
            salary: 24_000.0,
            from: 1980.0,
            to: 1981.0,
        },
        SalaryPeriod {
            employee: "gene",
            salary: 27_000.0,
            from: 1981.0,
            to: 1982.5,
        },
        SalaryPeriod {
            employee: "gene",
            salary: 31_000.0,
            from: 1982.5,
            to: 1985.0,
        },
        SalaryPeriod {
            employee: "gene",
            salary: 36_000.0,
            from: 1985.0,
            to: 1987.0,
        },
        SalaryPeriod {
            employee: "gene",
            salary: 43_000.0,
            from: 1987.0,
            to: 1991.0,
        },
    ];

    // An SR-Tree over the history; ids are offsets into `history`.
    let mut index = SRTree::<2>::new();
    for (i, p) in history.iter().enumerate() {
        index.insert(p.rect(), RecordId(i as u64));
    }

    // Temporal stab query: "who earned what at the start of 1985?"
    println!("salaries in effect at 1985.0:");
    let at_1985 = Point::new([1985.0, 0.0]);
    let t = Rect::new([1985.0, 0.0], [1985.0, 1_000_000.0]);
    for id in index.search(&t) {
        let p = &history[id.raw() as usize];
        println!("  {:>7} earned ${:>7.0}", p.employee, p.salary);
    }
    let _ = at_1985;

    // Range query: "which salary periods overlapped 1978–1983 with a salary
    // between 25K and 40K?" (the shaded window of paper Figure 1).
    println!("\nperiods overlapping 1978-1983 with salary in [25K, 40K]:");
    let window = Rect::new([1978.0, 25_000.0], [1983.0, 40_000.0]);
    for id in index.search(&window) {
        let p = &history[id.raw() as usize];
        println!(
            "  {:>7}: ${:>7.0} from {:.1} to {:.1}",
            p.employee, p.salary, p.from, p.to
        );
    }

    // A realistic scale: 50,000 periods across 5,000 employees, with a
    // skewed duration distribution, indexed by a Skeleton SR-Tree with
    // distribution prediction.
    let domain = Rect::new([1970.0, 15_000.0], [2026.0, 250_000.0]);
    let mut big = SkeletonSRTree::<2>::with_prediction(domain, 50_000, 2_500);
    let mut periods = 0u64;
    for emp in 0..5_000u64 {
        let mut year = 1970.0 + (emp % 30) as f64;
        let mut salary = 18_000.0 + (emp % 700) as f64 * 100.0;
        // A deterministic mix: most periods 1-3 years, some decades long.
        while year < 2025.0 {
            let dur = match (emp * 31 + periods) % 11 {
                0 => 20.0,
                1..=3 => 6.0,
                _ => 1.0 + ((emp + periods) % 3) as f64,
            };
            let to = (year + dur).min(2026.0);
            big.insert(Rect::new([year, salary], [to, salary]), RecordId(periods));
            periods += 1;
            year = to;
            salary *= 1.07;
            if salary > 240_000.0 {
                salary = 240_000.0;
            }
        }
    }
    println!("\nindexed {periods} salary periods for 5,000 employees");
    let q = Rect::new([1999.5, 60_000.0], [2000.5, 90_000.0]);
    let hits = big.search(&q);
    let accesses = big.count_search_accesses(&q);
    println!(
        "\"who earned 60-90K during 2000?\" → {} periods, {} of {} index nodes accessed",
        hits.len(),
        accesses,
        big.node_count()
    );
    let snap = big.stats();
    println!(
        "index adapted: {} spanning records stored, {} cuts, {} coalesces, {} node accesses/search avg",
        snap.spanning_stores,
        snap.cuts,
        snap.coalesces,
        accesses
    );
    assert!(big.check_invariants().is_empty());
}
