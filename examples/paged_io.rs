//! Physical I/O vs buffer-pool size for a disk-resident index.
//!
//! The paper's premise is a disk-resident index of which "only a small
//! portion may reside in main memory at a given time" (§1). This example
//! persists an SR-Tree, then replays the same query workload through buffer
//! pools of increasing size, showing logical node accesses (constant — the
//! paper's metric) against physical page reads (shrinking as the pool
//! approaches the index size).
//!
//! ```sh
//! cargo run --release --example paged_io
//! ```

use segment_indexes::core::{persist, IndexConfig, PagedSearcher, Tree};
use segment_indexes::storage::{BufferPool, BufferPoolConfig, DiskManager};
use segment_indexes::workloads::{queries_for_qar, DataDistribution};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("segidx-paged-io");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("index.db");

    // Build and persist a 50K-tuple SR-Tree over skewed interval data.
    let dataset = DataDistribution::I3.generate(50_000, 7);
    let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
    for (rect, id) in &dataset.records {
        tree.insert(*rect, *id);
    }
    let disk = Arc::new(DiskManager::create(&path)?);
    let meta = persist::save(&tree, &disk)?;
    disk.sync()?;
    let index_bytes: usize = disk.pages().iter().map(|(_, c)| c.page_size()).sum();
    println!(
        "persisted index: {} records, {} pages, {:.1} MB",
        tree.len(),
        disk.page_count(),
        index_bytes as f64 / 1e6
    );

    // A mixed workload replayed identically under each pool size.
    let queries: Vec<_> = [0.001, 0.1, 1.0, 10.0, 1000.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 40, 3).queries)
        .collect();

    println!(
        "\n{:>12} {:>16} {:>15} {:>9}",
        "pool size", "logical accesses", "physical reads", "hit rate"
    );
    for fraction in [0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let capacity_bytes = ((index_bytes as f64 * fraction) as usize).max(8 * 1024);
        let pool = BufferPool::with_config(Arc::clone(&disk), BufferPoolConfig { capacity_bytes });
        let searcher: PagedSearcher<2> = PagedSearcher::open(&pool, meta)?;
        // I/O counters live on the shared DiskManager; measure this pool's
        // contribution as a delta.
        let before = pool.stats().snapshot();
        let mut results = 0usize;
        for q in &queries {
            results += searcher.search(q)?.len();
        }
        let io = pool.stats().snapshot();
        let reads = io.reads - before.reads;
        let hits = io.pool_hits - before.pool_hits;
        let misses = io.pool_misses - before.pool_misses;
        println!(
            "{:>11.0}% {:>16} {:>15} {:>8.0}%",
            fraction * 100.0,
            searcher.logical_accesses(),
            reads,
            hits as f64 / (hits + misses).max(1) as f64 * 100.0
        );
        // The workload result is identical regardless of pool size.
        assert_eq!(results, {
            let mut r = 0;
            for q in &queries {
                r += tree.search(q).len();
            }
            r
        });
    }
    println!(
        "\nLogical accesses (the paper's metric) are buffer-independent;\n\
         physical reads fall as the pool grows — the variable node sizes of\n\
         §2.1.2 keep the upper levels cheap to cache."
    );
    Ok(())
}
