# Renders the reproduced Graphs 1-6 from the CSVs written by
#   cargo run --release -p segidx-bench --bin reproduce -- --graph paper --csv results
# Usage: gnuplot -c plot_graphs.gp          (from the results/ directory)
# Output: graphs.svg, one panel per paper graph, axes matching the paper
# (X = log10 of the query aspect ratio, Y = average nodes accessed/search).

set terminal svg size 1200,800 dynamic font "Helvetica,11"
set output "graphs.svg"
set multiplot layout 2,3 title "Segment Indexes (SIGMOD 1991) — reproduced evaluation"

set datafile separator ","
set key top center font ",9"
set xlabel "log_{10}(QAR)" offset 0,0.5
set ylabel "avg nodes accessed" offset 1.5,0
set grid back lw 0.5

titles = "'G1: I1 uniform/uniform' 'G2: I2 uniform len/exp Y' 'G3: I3 exp len/uniform Y' 'G4: I4 exp/exp' 'G5: R1 rect uniform' 'G6: R2 rect exp sides'"

do for [g=1:6] {
    set title word(titles, g)
    plot sprintf("graph%d.csv", g) using 2:3 with linespoints lw 2 pt 4  title "R-Tree", \
         ""                        using 2:4 with linespoints lw 2 pt 6  title "SR-Tree", \
         ""                        using 2:5 with linespoints lw 2 pt 8  title "Skeleton R", \
         ""                        using 2:6 with linespoints lw 2 pt 12 title "Skeleton SR"
}
unset multiplot
